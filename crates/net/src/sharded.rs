//! The sharded mesh: one [`AgentServer`] per RPP/row, batched wire ops, and
//! a concurrent controller fan-out.
//!
//! The single-server mesh costs one RPC per rack per control tick — linear
//! in fleet size, serial on the wire. Here the fleet is partitioned by a
//! [`ShardPlan`] into per-shard [`AgentHost`]s, each behind its own server,
//! and the controller talks to all of them through a [`ShardedRpcBus`]:
//!
//! * **Batched ops** — one `ReadAllReadings` per shard replaces N `Read`s;
//!   buffered commands flush as one `ApplyCommandBatch` per shard. A control
//!   tick costs O(servers) RPCs instead of O(racks).
//! * **Concurrent fan-out** — each shard has a persistent client thread
//!   owning its [`RpcBus`]; the bus hands every worker its job, then joins
//!   on the reply channels. Per-tick network latency is max-over-shards,
//!   not sum-over-racks.
//! * **In-server leaf control** — with [`RpcMeshConfig::leaf_control`], each
//!   shard's server hosts a leaf [`Controller`] ticked by one `TickLeaf` RPC;
//!   only per-group aggregates and power budgets cross the wire (§V's
//!   locality argument), and the upper tier here re-budgets shards from
//!   their reported IT load plus an equal share of the remaining headroom.
//!
//! Degraded modes stay per shard: every shard link carries its own
//! [`FaultPlan`] projection (derived seed, partitions scoped to the shard's
//! racks), so a partitioned shard's racks fall back to standalone variable
//! charging via the ordinary lease sweep while the other shards never miss
//! an override.
//!
//! Clean-link equivalence: command buffering defers application from the
//! controller tick to the start of the next `step_schedule` — before any
//! physics and before the clock advances. Nothing reads agent state in that
//! window and the flush renews leases at the same tick the per-rack commands
//! would have, so `RunMetrics` stay bit-identical to [`InMemoryBus`] and the
//! single-server mesh.
//!
//! [`ShardPlan`]: crate::backend::ShardPlan
//! [`RpcMeshConfig::leaf_control`]: crate::backend::RpcMeshConfig
//! [`InMemoryBus`]: recharge_dynamo::InMemoryBus

use std::collections::HashMap;
use std::io;
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use recharge_dynamo::{
    AgentBus, Controller, ControllerConfig, FleetBackend, HostedControlReport, PowerReading,
    RackAgent, SimRackAgent, Strategy,
};
use recharge_units::{Amperes, DeviceId, RackId, Seconds, SimTime, Watts};

use crate::backend::RpcMeshConfig;
use crate::client::{RpcBus, RpcBusConfig};
use crate::fault::FaultClock;
use crate::server::{AgentHost, AgentServer};
use crate::wire::{AgentCommand, GroupAggregate};

/// Control parameters for the in-server leaf tier: what each shard's hosted
/// [`Controller`] is built from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeafControlSpec {
    /// The breaker limit the leaf tier collectively protects; each shard
    /// starts with an equal share and is re-budgeted every control tick.
    pub limit: Watts,
    /// Coordination strategy for every leaf.
    pub strategy: Strategy,
    /// Whether leaves may postpone whole racks under extreme constraint.
    pub allow_postponing: bool,
}

/// One unit of work for a shard's client thread.
enum Job {
    /// Read every rack on the shard; `None` when the shard is unreachable.
    ReadAll(Sender<Option<Vec<PowerReading>>>),
    /// Apply a command batch; `false` when the batch was lost.
    Apply(Vec<AgentCommand>, Sender<bool>),
    /// Run the shard's hosted leaf tick with an optional fresh budget.
    TickLeaf(SimTime, Option<Watts>, Sender<Option<GroupAggregate>>),
}

/// A persistent client thread owning one shard's [`RpcBus`].
///
/// The bus is connected *inside* the thread (readiness reported through a
/// channel) so all shards connect concurrently too.
struct ShardWorker {
    tx: Option<Sender<Job>>,
    handle: Option<JoinHandle<()>>,
}

impl ShardWorker {
    fn spawn(
        endpoint: crate::endpoint::Endpoint,
        config: RpcBusConfig,
        clock: FaultClock,
    ) -> io::Result<(Self, Receiver<io::Result<Vec<RackId>>>)> {
        let (ready_tx, ready_rx) = mpsc::channel();
        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let handle = std::thread::Builder::new()
            .name("recharge-net-shard".into())
            .spawn(move || {
                let bus = match RpcBus::connect(&endpoint, config, clock) {
                    Ok(bus) => {
                        let _ = ready_tx.send(Ok(bus.racks()));
                        bus
                    }
                    Err(e) => {
                        let _ = ready_tx.send(Err(e));
                        return;
                    }
                };
                while let Ok(job) = job_rx.recv() {
                    match job {
                        Job::ReadAll(reply) => {
                            let _ = reply.send(bus.read_all());
                        }
                        Job::Apply(commands, reply) => {
                            let _ = reply.send(bus.apply_batch(commands).is_some());
                        }
                        Job::TickLeaf(now, budget, reply) => {
                            let _ = reply.send(bus.tick_leaf(now, budget));
                        }
                    }
                }
            })
            .map_err(|e| io::Error::other(format!("spawning shard worker: {e}")))?;
        Ok((
            ShardWorker {
                tx: Some(job_tx),
                handle: Some(handle),
            },
            ready_rx,
        ))
    }

    fn submit(&self, job: Job) -> bool {
        self.tx.as_ref().is_some_and(|tx| tx.send(job).is_ok())
    }
}

impl Drop for ShardWorker {
    fn drop(&mut self) {
        // Closing the job channel ends the worker loop; then join.
        self.tx = None;
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

struct BusState {
    /// Per-control-tick read cache: the first `read` after invalidation fans
    /// `ReadAllReadings` out to every shard; later reads hit the map.
    snapshot: Option<HashMap<RackId, PowerReading>>,
    /// Commands buffered per shard, flushed as one batch per shard at the
    /// start of the next `step_schedule`.
    pending: Vec<Vec<AgentCommand>>,
}

/// An [`AgentBus`] fanning out to one worker per shard.
///
/// Reads are snapshot-cached per control tick; commands are buffered and
/// batch-flushed (see the module docs for why that preserves bit-identity).
pub struct ShardedRpcBus {
    workers: Vec<ShardWorker>,
    shard_of: HashMap<RackId, usize>,
    racks: Vec<RackId>,
    state: Mutex<BusState>,
}

impl ShardedRpcBus {
    fn new(workers: Vec<ShardWorker>, groups: &[Vec<RackId>]) -> Self {
        let mut shard_of = HashMap::new();
        let mut racks = Vec::new();
        for (shard, group) in groups.iter().enumerate() {
            for &rack in group {
                shard_of.insert(rack, shard);
                racks.push(rack);
            }
        }
        ShardedRpcBus {
            workers,
            shard_of,
            racks,
            state: Mutex::new(BusState {
                snapshot: None,
                pending: vec![Vec::new(); groups.len()],
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, BusState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The number of shards this bus fans out to.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.workers.len()
    }

    /// Which shard hosts `rack`.
    #[must_use]
    pub fn shard_of(&self, rack: RackId) -> Option<usize> {
        self.shard_of.get(&rack).copied()
    }

    /// Fans `ReadAllReadings` out to every shard and joins on the replies —
    /// the latch making per-tick latency max-over-shards.
    fn fan_out_reads(&self) -> HashMap<RackId, PowerReading> {
        let replies: Vec<Option<Receiver<Option<Vec<PowerReading>>>>> = self
            .workers
            .iter()
            .map(|worker| {
                let (tx, rx) = mpsc::channel();
                worker.submit(Job::ReadAll(tx)).then_some(rx)
            })
            .collect();
        let mut snapshot = HashMap::with_capacity(self.racks.len());
        for reply in replies.into_iter().flatten() {
            if let Ok(Some(readings)) = reply.recv() {
                for reading in readings {
                    snapshot.insert(reading.rack, reading);
                }
            }
            // An unreachable shard contributes nothing: its racks read as
            // `None`, the same signal a disconnected in-memory rack gives.
        }
        snapshot
    }

    /// Flushes buffered commands, one `ApplyCommandBatch` per shard with any
    /// pending, all shards in flight concurrently.
    pub(crate) fn flush_commands(&self) {
        let pending: Vec<Vec<AgentCommand>> = {
            let mut state = self.lock();
            let shards = state.pending.len();
            std::mem::replace(&mut state.pending, vec![Vec::new(); shards])
        };
        let replies: Vec<Option<Receiver<bool>>> = pending
            .into_iter()
            .enumerate()
            .filter(|(_, commands)| !commands.is_empty())
            .map(|(shard, commands)| {
                let (tx, rx) = mpsc::channel();
                self.workers[shard]
                    .submit(Job::Apply(commands, tx))
                    .then_some(rx)
            })
            .collect();
        for reply in replies.into_iter().flatten() {
            let _ = reply.recv();
        }
    }

    /// Drops the read snapshot so the next read fans out fresh.
    pub(crate) fn invalidate_snapshot(&self) {
        self.lock().snapshot = None;
    }

    /// Runs every shard's hosted leaf tick concurrently; `budgets[k]` is
    /// pushed to shard `k` before its tick. Unreachable shards yield `None`.
    pub(crate) fn tick_leaves(
        &self,
        now: SimTime,
        budgets: &[Option<Watts>],
    ) -> Vec<Option<GroupAggregate>> {
        let replies: Vec<Option<Receiver<Option<GroupAggregate>>>> = self
            .workers
            .iter()
            .enumerate()
            .map(|(shard, worker)| {
                let (tx, rx) = mpsc::channel();
                worker
                    .submit(Job::TickLeaf(
                        now,
                        budgets.get(shard).copied().flatten(),
                        tx,
                    ))
                    .then_some(rx)
            })
            .collect();
        replies
            .into_iter()
            .map(|reply| reply.and_then(|rx| rx.recv().ok().flatten()))
            .collect()
    }

    fn buffer(&self, rack: RackId, command: AgentCommand) {
        if let Some(&shard) = self.shard_of.get(&rack) {
            self.lock().pending[shard].push(command);
        }
    }
}

impl AgentBus for ShardedRpcBus {
    fn racks(&self) -> Vec<RackId> {
        self.racks.clone()
    }

    fn read(&self, rack: RackId) -> Option<PowerReading> {
        let mut state = self.lock();
        if state.snapshot.is_none() {
            drop(state);
            let snapshot = self.fan_out_reads();
            state = self.lock();
            state.snapshot = Some(snapshot);
        }
        state
            .snapshot
            .as_ref()
            .and_then(|snapshot| snapshot.get(&rack).copied())
    }

    fn set_charge_override(&mut self, rack: RackId, current: Amperes) {
        self.buffer(rack, AgentCommand::SetChargeOverride(rack, current));
    }

    fn clear_charge_override(&mut self, rack: RackId) {
        self.buffer(rack, AgentCommand::ClearChargeOverride(rack));
    }

    fn set_charge_postponed(&mut self, rack: RackId, postponed: bool) {
        self.buffer(rack, AgentCommand::SetChargePostponed(rack, postponed));
    }

    fn cap_servers(&mut self, rack: RackId, limit: Watts) {
        self.buffer(rack, AgentCommand::CapServers(rack, limit));
    }

    fn uncap_servers(&mut self, rack: RackId) {
        self.buffer(rack, AgentCommand::UncapServers(rack));
    }
}

/// Upper-tier state for in-server leaf control.
struct LeafState {
    /// The total protected limit.
    limit: Watts,
    /// The budget each shard runs under; refreshed from reported IT load
    /// plus an equal headroom share after every tick. An unreachable shard
    /// keeps its previous budget *reserved* so the others cannot absorb
    /// power a degraded shard may still be drawing.
    budgets: Vec<Watts>,
}

/// A [`FleetBackend`] running the fleet behind per-shard agent servers.
pub struct ShardedRpcFleetBackend {
    hosts: Vec<Arc<AgentHost<SimRackAgent>>>,
    // Dropped after `bus` (whose workers hold the connections); order is
    // load-bearing only for prompt shutdown.
    _servers: Vec<AgentServer<SimRackAgent>>,
    clock: FaultClock,
    bus: ShardedRpcBus,
    leaf: Option<LeafState>,
    name: &'static str,
}

impl ShardedRpcFleetBackend {
    /// Partitions `agents` per `config.shards`, hosts each group behind its
    /// own server, and connects one client worker per shard (concurrently).
    /// With `leaf`, installs a leaf [`Controller`] into every host.
    pub fn spawn(
        agents: Vec<SimRackAgent>,
        config: &RpcMeshConfig,
        leaf: Option<LeafControlSpec>,
    ) -> io::Result<Self> {
        let racks: Vec<RackId> = agents.iter().map(RackAgent::rack).collect();
        let groups = config.shards.partition(&racks);
        let clock = FaultClock::new();

        let mut agent_iter = agents.into_iter();
        let mut hosts = Vec::with_capacity(groups.len());
        let mut servers = Vec::with_capacity(groups.len());
        let mut pending_workers = Vec::with_capacity(groups.len());
        for (shard, group) in groups.iter().enumerate() {
            let shard_agents: Vec<SimRackAgent> = agent_iter.by_ref().take(group.len()).collect();
            let host = Arc::new(
                AgentHost::new(shard_agents, config.lease_ticks, clock.clone())
                    .with_max_frame_len(config.max_frame_len)
                    .with_shard(shard as u32),
            );
            if let Some(spec) = leaf {
                let mut leaf_config = ControllerConfig::new(
                    DeviceId::new(shard as u32),
                    spec.limit / groups.len() as f64,
                );
                if spec.allow_postponing {
                    leaf_config = leaf_config.with_postponing();
                }
                host.install_leaf_controller(Controller::new(leaf_config, spec.strategy));
            }
            let server = AgentServer::serve(Arc::clone(&host), &config.fresh_endpoint()?)?;
            let bus_config = RpcBusConfig {
                deadline: config.deadline,
                connect_timeout: Duration::from_secs(2),
                retry: config.retry,
                seed: config
                    .seed
                    .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(shard as u64 + 1)),
                fault: config.fault.as_ref().map(|f| f.for_shard(shard, group)),
                max_frame_len: config.max_frame_len,
                shard_label: Some(shard as u32),
            };
            let (worker, ready) =
                ShardWorker::spawn(server.endpoint().clone(), bus_config, clock.clone())?;
            hosts.push(host);
            servers.push(server);
            pending_workers.push((worker, ready));
        }

        // Join the concurrent connects; discovery must agree with the plan.
        let mut workers = Vec::with_capacity(pending_workers.len());
        for ((worker, ready), group) in pending_workers.into_iter().zip(&groups) {
            let discovered = ready
                .recv()
                .map_err(|_| io::Error::other("shard worker died during connect"))??;
            if discovered != *group {
                return Err(io::Error::other(format!(
                    "shard discovery mismatch: expected {group:?}, got {discovered:?}"
                )));
            }
            workers.push(worker);
        }

        let leaf_state = leaf.map(|spec| LeafState {
            limit: spec.limit,
            budgets: vec![spec.limit / groups.len() as f64; groups.len()],
        });
        let name = if leaf_state.is_some() {
            "rpc-sharded-leaf"
        } else {
            "rpc-sharded"
        };
        Ok(ShardedRpcFleetBackend {
            hosts,
            _servers: servers,
            clock,
            bus: ShardedRpcBus::new(workers, &groups),
            leaf: leaf_state,
            name,
        })
    }

    /// The number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.hosts.len()
    }

    /// Shard `k`'s host (inspection for tests and reports).
    #[must_use]
    pub fn host(&self, shard: usize) -> &Arc<AgentHost<SimRackAgent>> {
        &self.hosts[shard]
    }

    /// Live health snapshot of every shard, in shard order — each server
    /// answers [`ReadHealth`](crate::wire::Request::ReadHealth) exactly as a
    /// remote scrape would, without renewing any coordination lease.
    #[must_use]
    pub fn health_reports(&self) -> Vec<crate::wire::HealthReport> {
        self.hosts
            .iter()
            .filter_map(
                |host| match host.handle(&crate::wire::Request::ReadHealth) {
                    crate::wire::Response::Health(health) => Some(health),
                    _ => None,
                },
            )
            .collect()
    }

    /// Whether `rack` is currently coordinated on its shard.
    #[must_use]
    pub fn is_coordinated(&self, rack: RackId) -> bool {
        self.hosts
            .iter()
            .any(|host| host.racks().contains(&rack) && host.is_coordinated(rack))
    }

    /// The sharded bus (inspection; the simulation gets it via `bus_mut`).
    #[must_use]
    pub fn bus(&self) -> &ShardedRpcBus {
        &self.bus
    }

    /// Runs `f` over the agent owning `rack`, if hosted.
    pub fn with_agent<R>(&self, rack: RackId, f: impl FnOnce(&mut SimRackAgent) -> R) -> Option<R> {
        for host in &self.hosts {
            if let Some(i) = host.racks().iter().position(|&r| r == rack) {
                return Some(host.with_agents(|agents| f(&mut agents[i])));
            }
        }
        None
    }
}

impl FleetBackend for ShardedRpcFleetBackend {
    fn name(&self) -> &'static str {
        self.name
    }

    fn step_schedule(
        &mut self,
        dt: Seconds,
        input_power: &[bool],
        load_of: &dyn Fn(RackId, usize) -> Watts,
    ) {
        // Buffered controller commands land first — before any physics and
        // before the clock advances, i.e. at the exact boundary where the
        // single-server mesh's immediately-applied commands became
        // observable. This is the bit-identity linchpin.
        self.bus.flush_commands();

        // Physics: shard outer, sub-step inner. Agents are independent
        // across shards, and within a shard the per-agent operation sequence
        // matches SerialBackend exactly.
        for host in &self.hosts {
            host.with_agents(|agents| {
                for (i, &power) in input_power.iter().enumerate() {
                    for agent in agents.iter_mut() {
                        agent.set_offered_load(load_of(agent.rack(), i));
                        agent.set_input_power(power);
                        agent.step(dt);
                    }
                }
            });
        }

        // One clock shared by all shards: advance once, then sweep each
        // host's leases at the new tick.
        self.clock.advance(input_power.len() as u64);
        for host in &self.hosts {
            host.sweep_leases();
        }
        self.bus.invalidate_snapshot();
    }

    fn readings(&self) -> Vec<PowerReading> {
        // Shard order is fleet order (contiguous partition), so plain
        // concatenation reproduces the serial backend's reading order.
        self.hosts.iter().flat_map(|host| host.readings()).collect()
    }

    fn bus_mut(&mut self) -> &mut dyn AgentBus {
        &mut self.bus
    }

    fn hosted_control_tick(&mut self, now: SimTime) -> Option<HostedControlReport> {
        let leaf = self.leaf.as_mut()?;
        let budgets: Vec<Option<Watts>> = leaf.budgets.iter().map(|&b| Some(b)).collect();
        let aggregates = self.bus.tick_leaves(now, &budgets);

        // Re-budget: reachable shards report their IT load and split the
        // remaining headroom equally; unreachable shards keep their previous
        // budget reserved (their racks are standalone but still drawing).
        let mut it_total = Watts::ZERO;
        let mut recharge_total = Watts::ZERO;
        let mut capped_total = Watts::ZERO;
        let mut reserved = Watts::ZERO;
        let mut reachable = 0usize;
        for (shard, aggregate) in aggregates.iter().enumerate() {
            match aggregate {
                Some(aggregate) => {
                    it_total += aggregate.it_load;
                    recharge_total += aggregate.recharge_power;
                    capped_total += aggregate.capped_power;
                    reachable += 1;
                }
                None => reserved += leaf.budgets[shard],
            }
        }
        if reachable > 0 {
            let headroom = (leaf.limit - it_total - reserved).max(Watts::ZERO);
            let share = headroom / reachable as f64;
            for (shard, aggregate) in aggregates.iter().enumerate() {
                if let Some(aggregate) = aggregate {
                    leaf.budgets[shard] = aggregate.it_load + share;
                }
            }
        }
        Some(HostedControlReport {
            it_load: it_total,
            recharge_power: recharge_total,
            capped_power: capped_total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{RpcFleetBackend, ShardPlan};
    use recharge_dynamo::FleetBackendKind;
    use recharge_units::Priority;

    fn agents(n: u32) -> Vec<SimRackAgent> {
        (0..n)
            .map(|i| {
                SimRackAgent::builder(RackId::new(i), Priority::ALL[(i % 3) as usize])
                    .offered_load(Watts::from_kilowatts(6.0))
                    .build()
            })
            .collect()
    }

    #[test]
    fn sharded_backend_matches_serial_physics() {
        let schedule: Vec<bool> = (0..8).map(|i| i % 5 != 2).collect();
        let load = |rack: RackId, i: usize| {
            Watts::from_kilowatts(5.5 + 0.2 * f64::from(rack.index()) + 0.05 * i as f64)
        };
        let mut serial = FleetBackendKind::Serial.build(agents(7));
        let mut sharded =
            ShardedRpcFleetBackend::spawn(agents(7), &RpcMeshConfig::shard_count(3), None)
                .expect("spawn");
        assert_eq!(sharded.shard_count(), 3);
        serial.step_schedule(Seconds::new(1.0), &schedule, &load);
        sharded.step_schedule(Seconds::new(1.0), &schedule, &load);
        assert_eq!(serial.readings(), sharded.readings());
    }

    #[test]
    fn sharded_bus_reads_match_single_server() {
        let mut single =
            RpcFleetBackend::spawn(agents(6), &RpcMeshConfig::default()).expect("spawn");
        let mut sharded =
            ShardedRpcFleetBackend::spawn(agents(6), &RpcMeshConfig::shard_count(2), None)
                .expect("spawn");
        let schedule = [true; 3];
        let load = |_: RackId, _: usize| Watts::from_kilowatts(6.0);
        single.step_schedule(Seconds::new(1.0), &schedule, &load);
        sharded.step_schedule(Seconds::new(1.0), &schedule, &load);
        for i in 0..6u32 {
            let rack = RackId::new(i);
            assert_eq!(single.bus_mut().read(rack), sharded.bus_mut().read(rack));
        }
        assert!(sharded.bus_mut().read(RackId::new(42)).is_none());
    }

    #[test]
    fn buffered_commands_flush_at_step_start() {
        let mut sharded =
            ShardedRpcFleetBackend::spawn(agents(4), &RpcMeshConfig::shard_count(2), None)
                .expect("spawn");
        sharded
            .bus_mut()
            .set_charge_override(RackId::new(0), Amperes::MAX_CHARGE);
        sharded
            .bus_mut()
            .set_charge_override(RackId::new(3), Amperes::MIN_CHARGE);
        // Still buffered: the agents have not seen the overrides yet.
        assert!(sharded
            .with_agent(RackId::new(0), |a| a
                .battery()
                .bbu()
                .charger()
                .override_current()
                .is_none())
            .unwrap());
        sharded.step_schedule(Seconds::new(1.0), &[true], &|_, _| {
            Watts::from_kilowatts(6.0)
        });
        assert_eq!(
            sharded.with_agent(RackId::new(0), |a| a
                .battery()
                .bbu()
                .charger()
                .override_current()),
            Some(Some(Amperes::MAX_CHARGE))
        );
        assert_eq!(
            sharded.with_agent(RackId::new(3), |a| a
                .battery()
                .bbu()
                .charger()
                .override_current()),
            Some(Some(Amperes::MIN_CHARGE))
        );
    }

    #[test]
    fn leaf_mode_coordinates_without_rack_commands() {
        let spec = LeafControlSpec {
            limit: Watts::from_kilowatts(190.0),
            strategy: Strategy::PriorityAware,
            allow_postponing: false,
        };
        let mut backend = ShardedRpcFleetBackend::spawn(
            agents(4),
            &RpcMeshConfig::shard_count(2).with_leaf_control(),
            Some(spec),
        )
        .expect("spawn");
        assert_eq!(backend.name(), "rpc-sharded-leaf");

        // Discharge, then recharge under hosted leaf control.
        let load = |_: RackId, _: usize| Watts::from_kilowatts(6.0);
        backend.step_schedule(Seconds::new(60.0), &[false], &load);
        for s in 1..60u32 {
            backend.step_schedule(Seconds::new(1.0), &[true], &load);
            let report = backend
                .hosted_control_tick(SimTime::from_secs(f64::from(s)))
                .expect("leaf tick");
            assert!(report.it_load > Watts::ZERO);
        }
        for i in 0..4u32 {
            let rack = RackId::new(i);
            assert!(backend.is_coordinated(rack), "{rack} not coordinated");
            let overridden = backend
                .with_agent(rack, |a| {
                    a.battery().bbu().charger().override_current().is_some()
                })
                .unwrap();
            assert!(overridden, "{rack} has no leaf override");
        }
    }

    #[test]
    fn spawn_rejects_leaf_control_without_spec() {
        let result = crate::backend::spawn_mesh(
            agents(2),
            &RpcMeshConfig::shard_count(2).with_leaf_control(),
            None,
        );
        match result {
            Err(err) => assert_eq!(err.kind(), io::ErrorKind::InvalidInput),
            Ok(_) => panic!("leaf_control without a spec must be rejected"),
        }
    }

    #[test]
    fn shard_plan_partitions_preserve_order_and_cover() {
        let racks: Vec<RackId> = (0..29).map(RackId::new).collect();
        for plan in [
            ShardPlan::Single,
            ShardPlan::Count(1),
            ShardPlan::Count(4),
            ShardPlan::Count(64),
            ShardPlan::ByRpp { racks_per_rpp: 14 },
        ] {
            let groups = plan.partition(&racks);
            let flattened: Vec<RackId> = groups.iter().flatten().copied().collect();
            assert_eq!(flattened, racks, "{plan:?} must cover in fleet order");
            assert!(
                groups.iter().all(|g| !g.is_empty()),
                "{plan:?} made an empty shard"
            );
        }
        assert_eq!(
            ShardPlan::ByRpp { racks_per_rpp: 14 }
                .partition(&racks)
                .len(),
            3
        );
        assert_eq!(ShardPlan::Count(64).partition(&racks).len(), 29);
    }
}
