//! Fast-path benchmark reporter: times each serial/fast-path pair, verifies
//! the fast path is result-equivalent, and emits one `BENCH_<name>.json` per
//! pair into the current directory.
//!
//! ```text
//! bench_report [out_dir]
//! ```
//!
//! Speedups are only meaningful relative to the recorded `cores` value: on a
//! single-core host the parallel paths measure their coordination overhead,
//! while the equivalence flags hold on any core count.

use std::fmt::Write as _;
use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

use recharge_core::SlaCurrentPolicy;
use recharge_dynamo::Strategy;
use recharge_reliability::{table1, AorSimulation, PhysicalAorSimulation};
use recharge_sim::{DischargeLevel, Scenario};
use recharge_units::{Amperes, Dod, Priority, Seconds, Watts};

struct Pair {
    name: &'static str,
    serial_secs: f64,
    fast_secs: f64,
    identical: bool,
}

impl Pair {
    fn emit(&self, out_dir: &Path, cores: usize) -> std::io::Result<()> {
        let mut json = String::new();
        let _ = writeln!(json, "{{");
        let _ = writeln!(json, "  \"benchmark\": \"{}\",", self.name);
        let _ = writeln!(json, "  \"serial_secs\": {:.6},", self.serial_secs);
        let _ = writeln!(json, "  \"fast_secs\": {:.6},", self.fast_secs);
        let _ = writeln!(
            json,
            "  \"speedup\": {:.3},",
            self.serial_secs / self.fast_secs.max(1e-12)
        );
        let _ = writeln!(json, "  \"identical\": {},", self.identical);
        let _ = writeln!(json, "  \"cores\": {cores}");
        let _ = writeln!(json, "}}");
        let path = out_dir.join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, json)?;
        println!(
            "{}: serial {:.3}s, fast {:.3}s, speedup {:.2}x, identical: {}",
            self.name,
            self.serial_secs,
            self.fast_secs,
            self.serial_secs / self.fast_secs.max(1e-12),
            self.identical
        );
        Ok(())
    }
}

fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_secs_f64())
}

fn parallel_montecarlo(cores: usize) -> Pair {
    let sim = AorSimulation::new(table1::standard_sources());
    let (years, trials, seed) = (2_000.0, 16, 17);
    let (serial, serial_secs) = time(|| sim.run_trials(years, trials, seed));
    let (parallel, fast_secs) = time(|| sim.run_trials_parallel(years, trials, seed, cores));
    Pair {
        name: "parallel_montecarlo",
        serial_secs,
        fast_secs,
        identical: serial == parallel,
    }
}

fn parallel_physical_aor(cores: usize) -> Pair {
    let sim = PhysicalAorSimulation::new(
        AorSimulation::new(table1::standard_sources()),
        Watts::from_kilowatts(6.3),
    );
    let table = recharge_battery::ChargeTimeTable::production();
    let policy = SlaCurrentPolicy::production();
    let rule = |dod: Dod| policy.sla_current(Priority::P2, dod);
    let (years, trials, seed) = (1_000.0, 12, 5);
    let (serial, serial_secs) = time(|| sim.run_trials_with(years, trials, seed, table, rule));
    let (parallel, fast_secs) =
        time(|| sim.run_trials_parallel_with(years, trials, seed, cores, table, rule));
    Pair {
        name: "parallel_physical_aor",
        serial_secs,
        fast_secs,
        identical: serial == parallel,
    }
}

fn memoized_policy() -> Pair {
    let policy = SlaCurrentPolicy::production();
    let queries: Vec<(Priority, Dod)> = (0..300_000)
        .map(|i| (Priority::ALL[i % 3], Dod::new((i % 997) as f64 / 997.0)))
        .collect();
    let (exact, serial_secs) = time(|| {
        queries
            .iter()
            .map(|&(p, d)| policy.sla_current_exact(p, d).as_amps())
            .sum::<f64>()
    });
    let (memo, fast_secs) = time(|| {
        queries
            .iter()
            .map(|&(p, d)| policy.sla_current(p, d).as_amps())
            .sum::<f64>()
    });
    // The memo rounds DOD up to the next of 1024 bins, so aggregate currents
    // sit within a per-query bin-step of the exact sum (0.02 A is generous).
    let identical = (exact - memo).abs() / queries.len() as f64 <= 0.02
        && queries.iter().all(|&(p, d)| {
            policy.sla_current(p, d) >= policy.sla_current_exact(p, d)
                && policy.sla_current(p, d) >= Amperes::MIN_CHARGE
        });
    Pair {
        name: "memoized_policy",
        serial_secs,
        fast_secs,
        identical,
    }
}

fn sharded_sim(cores: usize) -> Pair {
    let base = Scenario::row(3, 2, 2, 7)
        .power_limit(Watts::from_kilowatts(190.0))
        .strategy(Strategy::PriorityAware)
        .discharge(DischargeLevel::Low)
        .tick(Seconds::new(1.0))
        .max_horizon(Seconds::from_hours(2.5));
    let (serial, serial_secs) = time(|| base.clone().build().run());
    let (sharded, fast_secs) = time(|| base.clone().shards(cores).build().run());
    Pair {
        name: "sharded_sim",
        serial_secs,
        fast_secs,
        identical: serial == sharded,
    }
}

fn main() -> ExitCode {
    let out = std::env::args().nth(1).unwrap_or_else(|| ".".to_owned());
    let out_dir = Path::new(&out).to_path_buf();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "bench_report: {cores} core(s), writing to {}",
        out_dir.display()
    );

    let pairs = [
        parallel_montecarlo(cores),
        parallel_physical_aor(cores),
        memoized_policy(),
        sharded_sim(cores),
    ];
    let mut ok = true;
    for pair in &pairs {
        if let Err(e) = pair.emit(&out_dir, cores) {
            eprintln!("failed to write BENCH_{}.json: {e}", pair.name);
            ok = false;
        }
        ok &= pair.identical;
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        eprintln!("fast-path mismatch or write failure — see output above");
        ExitCode::from(1)
    }
}
