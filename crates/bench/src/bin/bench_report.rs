//! Fast-path benchmark reporter: times each serial/fast-path pair, verifies
//! the fast path is result-equivalent, and emits one `BENCH_<name>.json` per
//! pair into the current directory.
//!
//! ```text
//! bench_report [out_dir]
//! ```
//!
//! Speedups are only meaningful relative to the recorded `cores` value: on a
//! single-core host the parallel paths measure their coordination overhead,
//! while the equivalence flags hold on any core count.

use std::fmt::Write as _;
use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

use recharge_core::SlaCurrentPolicy;
use recharge_dynamo::{FleetBackendKind, SimRackAgent, Strategy};
use recharge_reliability::{table1, AorSimulation, PhysicalAorSimulation};
use recharge_sim::{DischargeLevel, Scenario};
use recharge_trace::{CampusFleet, RackPowerTrace};
use recharge_units::{Amperes, Dod, Priority, RackId, Seconds, Watts};

struct Pair {
    name: &'static str,
    serial_secs: f64,
    fast_secs: f64,
    identical: bool,
}

impl Pair {
    fn emit(&self, out_dir: &Path, cores: usize) -> std::io::Result<()> {
        let mut json = String::new();
        let _ = writeln!(json, "{{");
        let _ = writeln!(json, "  \"benchmark\": \"{}\",", self.name);
        let _ = writeln!(json, "  \"serial_secs\": {:.6},", self.serial_secs);
        let _ = writeln!(json, "  \"fast_secs\": {:.6},", self.fast_secs);
        let _ = writeln!(
            json,
            "  \"speedup\": {:.3},",
            self.serial_secs / self.fast_secs.max(1e-12)
        );
        let _ = writeln!(json, "  \"identical\": {},", self.identical);
        let _ = writeln!(json, "  \"cores\": {cores}");
        let _ = writeln!(json, "}}");
        let path = out_dir.join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, json)?;
        println!(
            "{}: serial {:.3}s, fast {:.3}s, speedup {:.2}x, identical: {}",
            self.name,
            self.serial_secs,
            self.fast_secs,
            self.serial_secs / self.fast_secs.max(1e-12),
            self.identical
        );
        Ok(())
    }
}

fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_secs_f64())
}

fn parallel_montecarlo(cores: usize) -> Pair {
    let sim = AorSimulation::new(table1::standard_sources());
    let (years, trials, seed) = (2_000.0, 16, 17);
    let (serial, serial_secs) = time(|| sim.run_trials(years, trials, seed));
    let (parallel, fast_secs) = time(|| sim.run_trials_parallel(years, trials, seed, cores));
    Pair {
        name: "parallel_montecarlo",
        serial_secs,
        fast_secs,
        identical: serial == parallel,
    }
}

fn parallel_physical_aor(cores: usize) -> Pair {
    let sim = PhysicalAorSimulation::new(
        AorSimulation::new(table1::standard_sources()),
        Watts::from_kilowatts(6.3),
    );
    let table = recharge_battery::ChargeTimeTable::production();
    let policy = SlaCurrentPolicy::production();
    let rule = |dod: Dod| policy.sla_current(Priority::P2, dod);
    let (years, trials, seed) = (1_000.0, 12, 5);
    let (serial, serial_secs) = time(|| sim.run_trials_with(years, trials, seed, table, rule));
    let (parallel, fast_secs) =
        time(|| sim.run_trials_parallel_with(years, trials, seed, cores, table, rule));
    Pair {
        name: "parallel_physical_aor",
        serial_secs,
        fast_secs,
        identical: serial == parallel,
    }
}

fn memoized_policy() -> Pair {
    let policy = SlaCurrentPolicy::production();
    let queries: Vec<(Priority, Dod)> = (0..300_000)
        .map(|i| (Priority::ALL[i % 3], Dod::new((i % 997) as f64 / 997.0)))
        .collect();
    let (exact, serial_secs) = time(|| {
        queries
            .iter()
            .map(|&(p, d)| policy.sla_current_exact(p, d).as_amps())
            .sum::<f64>()
    });
    let (memo, fast_secs) = time(|| {
        queries
            .iter()
            .map(|&(p, d)| policy.sla_current(p, d).as_amps())
            .sum::<f64>()
    });
    // The memo rounds DOD up to the next of 1024 bins, so aggregate currents
    // sit within a per-query bin-step of the exact sum (0.02 A is generous).
    let identical = (exact - memo).abs() / queries.len() as f64 <= 0.02
        && queries.iter().all(|&(p, d)| {
            policy.sla_current(p, d) >= policy.sla_current_exact(p, d)
                && policy.sla_current(p, d) >= Amperes::MIN_CHARGE
        });
    Pair {
        name: "memoized_policy",
        serial_secs,
        fast_secs,
        identical,
    }
}

fn sharded_sim(cores: usize) -> Pair {
    let base = Scenario::row(3, 2, 2, 7)
        .power_limit(Watts::from_kilowatts(190.0))
        .strategy(Strategy::PriorityAware)
        .discharge(DischargeLevel::Low)
        .tick(Seconds::new(1.0))
        .max_horizon(Seconds::from_hours(2.5));
    let (serial, serial_secs) = time(|| base.clone().build().run());
    let (sharded, fast_secs) = time(|| base.clone().shards(cores).build().run());
    Pair {
        name: "sharded_sim",
        serial_secs,
        fast_secs,
        identical: serial == sharded,
    }
}

/// The batched-submission probe: the same sharded scenario stepped per tick
/// (one channel round-trip per shard per sub-step) versus batched (one
/// round-trip per shard per control interval), with the serial backend as the
/// equivalence reference. Gates only on bit-identical metrics — the speedup
/// column is informational, so the probe stays green on a single core where
/// threading measures pure coordination overhead.
struct BackendProbe {
    serial_secs: f64,
    per_tick_secs: f64,
    batched_secs: f64,
    shards: usize,
    control_every: usize,
    identical: bool,
}

fn backend_probe() -> BackendProbe {
    let shards = 2;
    let control_every = 20;
    let base = || {
        Scenario::row(3, 2, 2, 7)
            .power_limit(Watts::from_kilowatts(190.0))
            .strategy(Strategy::PriorityAware)
            .discharge(DischargeLevel::Low)
            .tick(Seconds::new(1.0))
            .max_horizon(Seconds::from_hours(2.5))
            .control_every(control_every)
    };
    let (serial, serial_secs) = time(|| base().build().run());
    let (per_tick, per_tick_secs) = time(|| base().shards(shards).build().run());
    let (batched, batched_secs) = time(|| base().shards_batched(shards).build().run());
    BackendProbe {
        serial_secs,
        per_tick_secs,
        batched_secs,
        shards,
        control_every,
        identical: per_tick == serial && batched == serial,
    }
}

impl BackendProbe {
    fn emit(&self, out_dir: &Path, cores: usize) -> std::io::Result<()> {
        let speedup = self.per_tick_secs / self.batched_secs.max(1e-12);
        let mut json = String::new();
        let _ = writeln!(json, "{{");
        let _ = writeln!(json, "  \"benchmark\": \"backend\",");
        let _ = writeln!(json, "  \"serial_secs\": {:.6},", self.serial_secs);
        let _ = writeln!(json, "  \"per_tick_secs\": {:.6},", self.per_tick_secs);
        let _ = writeln!(json, "  \"batched_secs\": {:.6},", self.batched_secs);
        let _ = writeln!(json, "  \"batched_speedup\": {speedup:.3},");
        let _ = writeln!(json, "  \"shards\": {},", self.shards);
        let _ = writeln!(json, "  \"control_every\": {},", self.control_every);
        let _ = writeln!(
            json,
            "  \"round_trips_per_interval_per_tick\": {},",
            self.shards * self.control_every
        );
        let _ = writeln!(
            json,
            "  \"round_trips_per_interval_batched\": {},",
            self.shards
        );
        let _ = writeln!(json, "  \"identical\": {},", self.identical);
        let _ = writeln!(json, "  \"cores\": {cores}");
        let _ = writeln!(json, "}}");
        let path = out_dir.join("BENCH_backend.json");
        std::fs::write(&path, json)?;
        println!(
            "backend: serial {:.3}s, per-tick {:.3}s, batched {:.3}s \
             (speedup {speedup:.2}x, {} vs {} round-trips/interval), identical: {}",
            self.serial_secs,
            self.per_tick_secs,
            self.batched_secs,
            self.shards * self.control_every,
            self.shards,
            self.identical
        );
        Ok(())
    }
}

/// The telemetry pair: what do the disabled-path no-ops cost inside the tick
/// loop, and what does an instrumented run actually record?
///
/// There is no uninstrumented build to diff against, so the overhead is
/// measured directly: time `SPAN_OPS` disabled span+counter pairs to get a
/// per-op cost, time a full (telemetry-off) scenario run to get seconds per
/// tick, count the instrumentation ops one tick performs from an instrumented
/// run's trace, and report `ops_per_tick × per_op_cost / tick_secs`. The
/// gate (< 2%) fails the exit code like a fast-path mismatch would.
struct TelemetryProbe {
    per_op_ns: f64,
    tick_secs: f64,
    ops_per_tick: f64,
    overhead_frac: f64,
    trace_events: usize,
    snapshot_json: String,
    ok: bool,
}

fn telemetry_probe() -> TelemetryProbe {
    let scenario = || {
        Scenario::row(3, 2, 2, 7)
            .power_limit(Watts::from_kilowatts(190.0))
            .strategy(Strategy::PriorityAware)
            .discharge(DischargeLevel::Low)
            .tick(Seconds::new(1.0))
            .max_horizon(Seconds::from_hours(2.5))
    };

    // Per-op cost of the disabled fast path: one span guard + one counter
    // increment, the pair every instrumented site pays when telemetry is off.
    recharge_telemetry::set_enabled(false);
    const SPAN_OPS: u32 = 2_000_000;
    let (_, disabled_secs) = time(|| {
        for _ in 0..SPAN_OPS {
            let _span = recharge_telemetry::tspan!("bench.noop", "bench");
            recharge_telemetry::tcounter!("bench.noop_ops").inc();
        }
    });
    let per_op_ns = disabled_secs * 1e9 / f64::from(SPAN_OPS);

    // Telemetry-off wall time per tick for the sharded small scenario.
    let (_, run_secs) = time(|| scenario().shards(2).build().run());

    // Instrumented run: counts real ops per tick and yields the snapshot +
    // trace that BENCH_telemetry.json publishes.
    recharge_telemetry::set_enabled(true);
    recharge_telemetry::reset_metrics();
    let _ = recharge_telemetry::take_records();
    let metrics = scenario().shards(2).build().run();
    let _ = AorSimulation::new(table1::standard_sources()).run_trials(50.0, 4, 9);
    let records = recharge_telemetry::take_records();
    let snapshot = recharge_telemetry::snapshot();
    recharge_telemetry::set_enabled(false);

    let ticks = snapshot
        .counters
        .iter()
        .find(|(name, _)| name == "sim.ticks")
        .map_or(0, |&(_, v)| v);
    let counter_ops: u64 = snapshot.counters.iter().map(|&(_, v)| v).sum();
    let tick_secs = run_secs / (ticks.max(1) as f64);
    // Spans/events recorded plus counter bumps, averaged over the tick loop.
    let ops_per_tick = (records.len() as u64 + counter_ops) as f64 / ticks.max(1) as f64;
    let overhead_frac = ops_per_tick * per_op_ns * 1e-9 / tick_secs.max(1e-12);

    let ok = overhead_frac < 0.02 && !metrics.breaker_tripped && !records.is_empty();
    TelemetryProbe {
        per_op_ns,
        tick_secs,
        ops_per_tick,
        overhead_frac,
        trace_events: records.len(),
        snapshot_json: snapshot.to_json(),
        ok,
    }
}

impl TelemetryProbe {
    fn emit(&self, out_dir: &Path) -> std::io::Result<()> {
        let mut json = String::new();
        let _ = writeln!(json, "{{");
        let _ = writeln!(json, "  \"benchmark\": \"telemetry\",");
        let _ = writeln!(json, "  \"disabled_per_op_ns\": {:.3},", self.per_op_ns);
        let _ = writeln!(json, "  \"tick_secs\": {:.9},", self.tick_secs);
        let _ = writeln!(json, "  \"ops_per_tick\": {:.2},", self.ops_per_tick);
        let _ = writeln!(
            json,
            "  \"disabled_overhead_frac\": {:.9},",
            self.overhead_frac
        );
        let _ = writeln!(json, "  \"overhead_gate\": 0.02,");
        let _ = writeln!(json, "  \"trace_events\": {},", self.trace_events);
        let _ = writeln!(json, "  \"pass\": {},", self.ok);
        let _ = writeln!(json, "  \"telemetry\": {}", self.snapshot_json);
        let _ = writeln!(json, "}}");
        let path = out_dir.join("BENCH_telemetry.json");
        std::fs::write(&path, json)?;
        println!(
            "telemetry: disabled op {:.1} ns, {:.1} ops/tick, overhead {:.5}%, \
             {} trace events, pass: {}",
            self.per_op_ns,
            self.ops_per_tick,
            self.overhead_frac * 100.0,
            self.trace_events,
            self.ok
        );
        Ok(())
    }
}

/// The flight-recorder pair: the black box must be invisible twice over —
/// `RunMetrics` bit-identical with the recorder on and off, and steady-state
/// journaling cost at most 2 % of a simulation tick.
///
/// The overhead is measured like the telemetry probe's: a recorder-off run
/// gives seconds per tick, the recorder-on twin gives journaled events per
/// tick (ring overwrites included), and a hot loop over `flight()` gives the
/// per-event recording cost; the gate is their product over the tick time.
struct ObsProbe {
    per_event_ns: f64,
    tick_secs: f64,
    events_per_tick: f64,
    overhead_frac: f64,
    journal_window: usize,
    recorded_events: u64,
    identical: bool,
    ok: bool,
}

const OBS_OVERHEAD_GATE: f64 = 0.02;

fn obs_probe() -> ObsProbe {
    use recharge_telemetry::{FlightKind, ReasonCode};

    let scenario = || {
        Scenario::row(3, 2, 2, 7)
            .power_limit(Watts::from_kilowatts(190.0))
            .strategy(Strategy::PriorityAware)
            .discharge(DischargeLevel::Low)
            .tick(Seconds::new(1.0))
            .max_horizon(Seconds::from_hours(2.5))
            .shards(2)
    };
    recharge_telemetry::set_enabled(false);

    // Reference: the recorder off, timing the tick loop.
    recharge_telemetry::set_recorder_enabled(false);
    let (off, off_secs) = time(|| scenario().build().run());

    // The twin with the recorder at its default (on), journaling everything.
    recharge_telemetry::set_recorder_enabled(true);
    let _ = recharge_telemetry::take_flight_events();
    let over_before = recharge_telemetry::overwritten_events();
    let (on, _) = time(|| scenario().build().run());
    let journal = recharge_telemetry::take_flight_events();
    let recorded_events =
        journal.len() as u64 + (recharge_telemetry::overwritten_events() - over_before);

    // Steady-state per-event cost on the exact hot path the simulation pays:
    // ambient-time `flight` into a (soon wrapped) thread-local ring.
    const EVENTS: u32 = 1_000_000;
    let (_, record_secs) = time(|| {
        for i in 0..EVENTS {
            recharge_telemetry::flight(
                FlightKind::Admit,
                ReasonCode::AdmitUpgraded,
                i % 7,
                1,
                100,
                u64::from(i),
                0,
            );
        }
    });
    let _ = recharge_telemetry::take_flight_events();
    let per_event_ns = record_secs * 1e9 / f64::from(EVENTS);

    let ticks = off.series.len().max(1);
    let tick_secs = off_secs / ticks as f64;
    let events_per_tick = recorded_events as f64 / ticks as f64;
    let overhead_frac = events_per_tick * per_event_ns * 1e-9 / tick_secs.max(1e-12);

    let identical = on == off;
    ObsProbe {
        per_event_ns,
        tick_secs,
        events_per_tick,
        overhead_frac,
        journal_window: journal.len(),
        recorded_events,
        identical,
        ok: identical && overhead_frac < OBS_OVERHEAD_GATE,
    }
}

impl ObsProbe {
    fn emit(&self, out_dir: &Path, cores: usize) -> std::io::Result<()> {
        let mut json = String::new();
        let _ = writeln!(json, "{{");
        let _ = writeln!(json, "  \"benchmark\": \"obs\",");
        let _ = writeln!(json, "  \"per_event_ns\": {:.3},", self.per_event_ns);
        let _ = writeln!(json, "  \"tick_secs\": {:.9},", self.tick_secs);
        let _ = writeln!(json, "  \"events_per_tick\": {:.3},", self.events_per_tick);
        let _ = writeln!(
            json,
            "  \"recorder_overhead_frac\": {:.9},",
            self.overhead_frac
        );
        let _ = writeln!(json, "  \"overhead_gate\": {OBS_OVERHEAD_GATE},");
        let _ = writeln!(json, "  \"recorded_events\": {},", self.recorded_events);
        let _ = writeln!(json, "  \"journal_window\": {},", self.journal_window);
        let _ = writeln!(json, "  \"metrics_identical\": {},", self.identical);
        let _ = writeln!(json, "  \"pass\": {},", self.ok);
        let _ = writeln!(json, "  \"cores\": {cores}");
        let _ = writeln!(json, "}}");
        std::fs::write(out_dir.join("BENCH_obs.json"), json)?;
        println!(
            "obs: {:.1} ns/event, {:.1} events/tick, overhead {:.5}% of a {:.1} µs tick, \
             metrics identical: {}, pass: {}",
            self.per_event_ns,
            self.events_per_tick,
            self.overhead_frac * 100.0,
            self.tick_secs * 1e6,
            self.identical,
            self.ok
        );
        Ok(())
    }
}

/// The mesh probe: the same scenario over the in-process serial backend and
/// over the RPC mesh on loopback TCP, clean link and chaos profile.
///
/// Gates on the clean-link run being bit-identical to serial — the mesh's
/// headline guarantee — and on the chaos run (10 % drops, tail delays, one
/// 60-tick partition) keeping the breaker closed. The per-tick overhead and
/// retry counts are informational.
struct NetProbe {
    serial_secs: f64,
    rpc_secs: f64,
    chaos_secs: f64,
    ticks: u64,
    rpc_calls: u64,
    chaos_retries: u64,
    identical: bool,
    chaos_ok: bool,
}

fn net_probe() -> NetProbe {
    use recharge_net::{FaultPlan, Partition, RpcMeshConfig};

    let base = || {
        Scenario::row(3, 2, 2, 7)
            .power_limit(Watts::from_kilowatts(190.0))
            .strategy(Strategy::PriorityAware)
            .discharge(DischargeLevel::Low)
            .tick(Seconds::new(1.0))
            .max_horizon(Seconds::from_hours(2.5))
    };

    // Counters gate on the global enable flag; keep it on for all three runs
    // so serial and mesh pay the same (sub-2 %) instrumentation cost.
    recharge_telemetry::set_enabled(true);
    let ticks_counter = recharge_telemetry::counter("sim.ticks");
    let calls = recharge_telemetry::counter("net.rpc_calls");
    let retries = recharge_telemetry::counter("net.rpc_retries");

    let ticks_before = ticks_counter.value();
    let (serial, serial_secs) = time(|| base().build().run());
    let ticks = ticks_counter.value() - ticks_before;

    let calls_before = calls.value();
    let (rpc, rpc_secs) = time(|| base().rpc(RpcMeshConfig::default()).build().run());
    let rpc_calls = calls.value() - calls_before;

    let retries_before = retries.value();
    let chaos_plan = FaultPlan::chaos(0x000C_4A05, 0.10, vec![Partition::all(600, 660)]);
    let (chaos, chaos_secs) = time(|| {
        base()
            .rpc(RpcMeshConfig::with_fault(chaos_plan))
            .build()
            .run()
    });
    let chaos_retries = retries.value() - retries_before;
    recharge_telemetry::set_enabled(false);

    NetProbe {
        serial_secs,
        rpc_secs,
        chaos_secs,
        ticks,
        rpc_calls,
        chaos_retries,
        identical: rpc == serial,
        chaos_ok: !chaos.breaker_tripped,
    }
}

impl NetProbe {
    fn emit(&self, out_dir: &Path, cores: usize) -> std::io::Result<()> {
        let ticks = self.ticks.max(1) as f64;
        let overhead_us = (self.rpc_secs - self.serial_secs) * 1e6 / ticks;
        let mut json = String::new();
        let _ = writeln!(json, "{{");
        let _ = writeln!(json, "  \"benchmark\": \"net\",");
        let _ = writeln!(json, "  \"serial_secs\": {:.6},", self.serial_secs);
        let _ = writeln!(json, "  \"rpc_secs\": {:.6},", self.rpc_secs);
        let _ = writeln!(json, "  \"chaos_secs\": {:.6},", self.chaos_secs);
        let _ = writeln!(json, "  \"ticks\": {},", self.ticks);
        let _ = writeln!(json, "  \"rpc_overhead_us_per_tick\": {overhead_us:.3},");
        let _ = writeln!(json, "  \"rpc_calls\": {},", self.rpc_calls);
        let _ = writeln!(json, "  \"chaos_retries\": {},", self.chaos_retries);
        let _ = writeln!(json, "  \"identical\": {},", self.identical);
        let _ = writeln!(json, "  \"chaos_breaker_held\": {},", self.chaos_ok);
        let _ = writeln!(json, "  \"cores\": {cores}");
        let _ = writeln!(json, "}}");
        let path = out_dir.join("BENCH_net.json");
        std::fs::write(&path, json)?;
        println!(
            "net: serial {:.3}s, rpc {:.3}s ({overhead_us:.1} µs/tick over {} calls), \
             chaos {:.3}s ({} retries), identical: {}, chaos breaker held: {}",
            self.serial_secs,
            self.rpc_secs,
            self.rpc_calls,
            self.chaos_secs,
            self.chaos_retries,
            self.identical,
            self.chaos_ok
        );
        Ok(())
    }
}

/// The sharded-mesh probe: the same scenario over serial, the single-server
/// mesh, and the sharded mesh at 1/2/4 shards, all with `control_every(5)`.
///
/// Gates on every mesh run being bit-identical to serial and on the batched
/// wire ops actually collapsing traffic: at most 3 RPCs per shard per
/// control tick (the implementation spends 2 — one `ReadAllReadings`, one
/// `ApplyCommandBatch`). The fan-out timing comparison is informational: on
/// a single-core host the concurrent shard threads measure coordination
/// overhead, not latency hiding.
struct ShardedNetRow {
    shards: usize,
    secs: f64,
    rpc_calls: u64,
    identical: bool,
}

struct ShardedNetProbe {
    serial_secs: f64,
    single_secs: f64,
    single_calls: u64,
    control_ticks: u64,
    control_every: usize,
    rows: Vec<ShardedNetRow>,
    identical: bool,
    rpc_economy_ok: bool,
}

const SHARDED_NET_RPC_GATE: f64 = 3.0;

fn sharded_net_probe() -> ShardedNetProbe {
    use recharge_net::RpcMeshConfig;

    let control_every = 5;
    let base = || {
        Scenario::row(3, 2, 2, 7)
            .power_limit(Watts::from_kilowatts(190.0))
            .strategy(Strategy::PriorityAware)
            .discharge(DischargeLevel::Low)
            .tick(Seconds::new(1.0))
            .max_horizon(Seconds::from_hours(2.5))
            .control_every(control_every)
    };

    recharge_telemetry::set_enabled(true);
    let ticks_counter = recharge_telemetry::counter("sim.ticks");
    let calls = recharge_telemetry::counter("net.rpc_calls");

    let ticks_before = ticks_counter.value();
    let (serial, serial_secs) = time(|| base().build().run());
    let control_ticks = (ticks_counter.value() - ticks_before) / control_every as u64;

    let calls_before = calls.value();
    let (single, single_secs) = time(|| base().rpc(RpcMeshConfig::default()).build().run());
    let single_calls = calls.value() - calls_before;

    let mut rows = Vec::new();
    for shards in [1usize, 2, 4] {
        let calls_before = calls.value();
        let (metrics, secs) = time(|| base().rpc(RpcMeshConfig::shard_count(shards)).build().run());
        rows.push(ShardedNetRow {
            shards,
            secs,
            rpc_calls: calls.value() - calls_before,
            identical: metrics == serial,
        });
    }
    recharge_telemetry::set_enabled(false);

    let identical = single == serial && rows.iter().all(|r| r.identical);
    let rpc_economy_ok = rows.iter().all(|r| {
        r.rpc_calls as f64 <= SHARDED_NET_RPC_GATE * (r.shards as u64 * control_ticks.max(1)) as f64
    });
    ShardedNetProbe {
        serial_secs,
        single_secs,
        single_calls,
        control_ticks,
        control_every,
        rows,
        identical,
        rpc_economy_ok,
    }
}

impl ShardedNetProbe {
    fn emit(&self, out_dir: &Path, cores: usize) -> std::io::Result<()> {
        let control_ticks = self.control_ticks.max(1) as f64;
        let four_shard_secs = self
            .rows
            .iter()
            .find(|r| r.shards == 4)
            .map_or(self.single_secs, |r| r.secs);
        let mut json = String::new();
        let _ = writeln!(json, "{{");
        let _ = writeln!(json, "  \"benchmark\": \"net_sharded\",");
        let _ = writeln!(json, "  \"serial_secs\": {:.6},", self.serial_secs);
        let _ = writeln!(json, "  \"single_rpc_secs\": {:.6},", self.single_secs);
        let _ = writeln!(json, "  \"single_rpc_calls\": {},", self.single_calls);
        let _ = writeln!(json, "  \"control_ticks\": {},", self.control_ticks);
        let _ = writeln!(json, "  \"control_every\": {},", self.control_every);
        let _ = writeln!(json, "  \"shards\": [");
        for (i, row) in self.rows.iter().enumerate() {
            let per_shard_tick = row.rpc_calls as f64 / (row.shards as f64 * control_ticks);
            let overhead_us = (row.secs - self.serial_secs) * 1e6 / control_ticks;
            let comma = if i + 1 == self.rows.len() { "" } else { "," };
            let _ = writeln!(
                json,
                "    {{\"shards\": {}, \"secs\": {:.6}, \"rpc_calls\": {}, \
                 \"rpcs_per_shard_per_control_tick\": {per_shard_tick:.3}, \
                 \"overhead_us_per_control_tick\": {overhead_us:.3}, \
                 \"identical\": {}}}{comma}",
                row.shards, row.secs, row.rpc_calls, row.identical
            );
        }
        let _ = writeln!(json, "  ],");
        let _ = writeln!(
            json,
            "  \"rpc_gate_per_shard_per_control_tick\": {SHARDED_NET_RPC_GATE},"
        );
        let _ = writeln!(json, "  \"rpc_economy_ok\": {},", self.rpc_economy_ok);
        let _ = writeln!(
            json,
            "  \"fanout_no_worse_than_single\": {},",
            four_shard_secs <= self.single_secs
        );
        let _ = writeln!(json, "  \"identical\": {},", self.identical);
        let _ = writeln!(json, "  \"cores\": {cores}");
        let _ = writeln!(json, "}}");
        let path = out_dir.join("BENCH_net_sharded.json");
        std::fs::write(&path, json)?;
        println!(
            "net_sharded: serial {:.3}s, single-rpc {:.3}s ({} calls); identical: {}, \
             rpc economy ok: {}",
            self.serial_secs,
            self.single_secs,
            self.single_calls,
            self.identical,
            self.rpc_economy_ok
        );
        for row in &self.rows {
            println!(
                "  {} shard(s): {:.3}s, {} calls ({:.2} rpcs/shard/control-tick)",
                row.shards,
                row.secs,
                row.rpc_calls,
                row.rpc_calls as f64 / (row.shards as f64 * control_ticks)
            );
        }
        Ok(())
    }
}

/// The campus-scale probe: the struct-of-arrays kernel stepped over a
/// ≥100k-rack campus (317 paper MSB rows), with the object path timed on the
/// same schedule for the speedup headline.
///
/// Wall-clock throughput is core-count dependent, so on this probe the gates
/// are core-count *independent*: (1) the SoA readings after the schedule are
/// bit-identical to the object path's at full campus scale, (2) a small
/// full-simulation run produces bit-identical `RunMetrics` on the serial,
/// SoA, and sharded-SoA backends, and (3) the SoA kernel's ns-per-rack-step
/// stays within a generous single-core budget. Racks × ticks/sec and the
/// speedup over the object path are reported for reference.
struct ScaleProbe {
    racks: usize,
    substeps: usize,
    soa_secs: f64,
    soa_sharded_secs: f64,
    object_secs: f64,
    ns_per_rack_step: f64,
    identical_at_scale: bool,
    sim_identical: bool,
    pass: bool,
}

/// Single-core budget for one SoA rack sub-step (generous: the kernel
/// measures in the low hundreds of nanoseconds).
const SCALE_NS_BUDGET: f64 = 2_000.0;
/// The tentpole floor: the probe must exercise at least this many racks.
const SCALE_RACKS_GATE: usize = 100_000;

fn scale_probe(cores: usize) -> ScaleProbe {
    // 317 paper rows × 316 racks = 100,172 racks — just past the 100k floor.
    let campus = CampusFleet::paper_campus(317, 41);
    let agents: Vec<SimRackAgent> = campus
        .fleet()
        .iter()
        .map(|e| {
            SimRackAgent::builder(e.rack, e.priority)
                .offered_load(Watts::from_kilowatts(6.0))
                .build()
        })
        .collect();
    let racks = agents.len();

    // 12 dark sub-steps discharge every rack (~4% DOD), then power returns
    // and the rest of the schedule charges — both kernel branches run hot.
    let substeps = 48usize;
    let schedule: Vec<bool> = (0..substeps).map(|i| i >= 12).collect();
    let load = |rack: RackId, i: usize| {
        Watts::from_kilowatts(5.5 + 0.25 * f64::from(rack.index() % 8) + 0.01 * (i % 16) as f64)
    };

    let mut soa = FleetBackendKind::Soa.build(agents.clone());
    let ((), soa_secs) = time(|| soa.step_schedule(Seconds::new(1.0), &schedule, &load));
    let mut soa_sharded = FleetBackendKind::SoaSharded {
        shards: cores.max(2),
    }
    .build(agents.clone());
    let ((), soa_sharded_secs) =
        time(|| soa_sharded.step_schedule(Seconds::new(1.0), &schedule, &load));
    let mut object = FleetBackendKind::Serial.build(agents);
    let ((), object_secs) = time(|| object.step_schedule(Seconds::new(1.0), &schedule, &load));

    let reference = object.readings();
    let identical_at_scale = soa.readings() == reference && soa_sharded.readings() == reference;

    // Full-simulation equivalence at a size the object path can afford: the
    // controller, telemetry sampling, and metrics pipeline all ride on top of
    // the backend, and the SoA run must not move a single bit of RunMetrics.
    let sim = || {
        Scenario::row(30, 30, 30, 13)
            .power_limit(Watts::from_kilowatts(600.0))
            .discharge(DischargeLevel::Medium)
            .allow_postponing()
            .max_horizon(Seconds::new(600.0))
    };
    let serial_metrics = sim().build().run();
    let sim_identical = sim().soa().build().run() == serial_metrics
        && sim().soa_sharded(2).build().run() == serial_metrics;

    let ns_per_rack_step = soa_secs * 1e9 / (racks * substeps) as f64;
    let pass = identical_at_scale
        && sim_identical
        && racks >= SCALE_RACKS_GATE
        && ns_per_rack_step <= SCALE_NS_BUDGET;
    ScaleProbe {
        racks,
        substeps,
        soa_secs,
        soa_sharded_secs,
        object_secs,
        ns_per_rack_step,
        identical_at_scale,
        sim_identical,
        pass,
    }
}

impl ScaleProbe {
    fn emit(&self, out_dir: &Path, cores: usize) -> std::io::Result<()> {
        let rack_steps = (self.racks * self.substeps) as f64;
        let rack_ticks_per_sec = rack_steps / self.soa_secs.max(1e-12);
        let speedup = self.object_secs / self.soa_secs.max(1e-12);
        let mut json = String::new();
        let _ = writeln!(json, "{{");
        let _ = writeln!(json, "  \"benchmark\": \"scale\",");
        let _ = writeln!(json, "  \"racks\": {},", self.racks);
        let _ = writeln!(json, "  \"racks_gate\": {SCALE_RACKS_GATE},");
        let _ = writeln!(json, "  \"substeps\": {},", self.substeps);
        let _ = writeln!(json, "  \"soa_secs\": {:.6},", self.soa_secs);
        let _ = writeln!(
            json,
            "  \"soa_sharded_secs\": {:.6},",
            self.soa_sharded_secs
        );
        let _ = writeln!(json, "  \"object_secs\": {:.6},", self.object_secs);
        let _ = writeln!(json, "  \"soa_speedup_over_object\": {speedup:.3},");
        let _ = writeln!(
            json,
            "  \"ns_per_rack_step\": {:.3},",
            self.ns_per_rack_step
        );
        let _ = writeln!(json, "  \"ns_per_rack_step_budget\": {SCALE_NS_BUDGET},");
        let _ = writeln!(json, "  \"rack_ticks_per_sec\": {rack_ticks_per_sec:.0},");
        let _ = writeln!(
            json,
            "  \"identical_at_scale\": {},",
            self.identical_at_scale
        );
        let _ = writeln!(json, "  \"sim_metrics_identical\": {},", self.sim_identical);
        let _ = writeln!(json, "  \"pass\": {},", self.pass);
        let _ = writeln!(json, "  \"cores\": {cores}");
        let _ = writeln!(json, "}}");
        std::fs::write(out_dir.join("BENCH_scale.json"), json)?;
        println!(
            "scale: {} racks × {} sub-steps; soa {:.3}s ({:.0} ns/rack-step, \
             {rack_ticks_per_sec:.2e} rack-ticks/s), object {:.3}s (speedup {speedup:.2}x), \
             identical at scale: {}, sim metrics identical: {}, pass: {}",
            self.racks,
            self.substeps,
            self.soa_secs,
            self.ns_per_rack_step,
            self.object_secs,
            self.identical_at_scale,
            self.sim_identical,
            self.pass
        );
        Ok(())
    }
}

/// The event-stepping pair: the event-driven backend must be bit-identical
/// to a dense run of the same scenario AND execute at least 5x fewer rack
/// sub-steps on the paper diurnal profile. A 4 h warmup puts most of the
/// horizon in the quiet wall-power regime the scheduler is built to skip;
/// the counters come from the backend itself (executed + skipped always
/// equals the dense sub-step count, so the dense denominator needs no
/// second instrumented run).
struct EventProbe {
    dense_secs: f64,
    event_secs: f64,
    substeps_dense: u64,
    substeps_executed: u64,
    substeps_skipped: u64,
    events_fired: u64,
    reduction: f64,
    identical: bool,
    ok: bool,
}

fn event_probe() -> EventProbe {
    let scenario = || {
        Scenario::row(3, 2, 2, 7)
            .power_limit(Watts::from_kilowatts(190.0))
            .strategy(Strategy::PriorityAware)
            .discharge(DischargeLevel::Low)
            .tick(Seconds::new(1.0))
            .warmup(Seconds::from_hours(4.0))
            .max_horizon(Seconds::from_hours(2.5))
    };
    let (dense, dense_secs) = time(|| scenario().soa().build().run());

    // Counters gate on the global enable flag; RunMetrics are bit-identical
    // with telemetry on or off, so flipping it between runs is safe.
    recharge_telemetry::set_enabled(true);
    let executed_counter = recharge_telemetry::counter("sim.rack_substeps");
    let skipped_counter = recharge_telemetry::counter("sim.ticks_skipped");
    let events_counter = recharge_telemetry::counter("sim.events_fired");
    let executed_before = executed_counter.value();
    let skipped_before = skipped_counter.value();
    let events_before = events_counter.value();
    let (event, event_secs) = time(|| scenario().event_driven().build().run());
    let substeps_executed = executed_counter.value() - executed_before;
    let substeps_skipped = skipped_counter.value() - skipped_before;
    let events_fired = events_counter.value() - events_before;
    recharge_telemetry::set_enabled(false);

    let substeps_dense = substeps_executed + substeps_skipped;
    let reduction = substeps_dense as f64 / substeps_executed.max(1) as f64;
    let identical = event == dense;
    EventProbe {
        dense_secs,
        event_secs,
        substeps_dense,
        substeps_executed,
        substeps_skipped,
        events_fired,
        reduction,
        identical,
        ok: identical && reduction >= 5.0,
    }
}

impl EventProbe {
    fn emit(&self, out_dir: &Path, cores: usize) -> std::io::Result<()> {
        let mut json = String::new();
        let _ = writeln!(json, "{{");
        let _ = writeln!(json, "  \"benchmark\": \"event\",");
        let _ = writeln!(json, "  \"cores\": {cores},");
        let _ = writeln!(json, "  \"dense_secs\": {:.6},", self.dense_secs);
        let _ = writeln!(json, "  \"event_secs\": {:.6},", self.event_secs);
        let _ = writeln!(json, "  \"rack_substeps_dense\": {},", self.substeps_dense);
        let _ = writeln!(
            json,
            "  \"rack_substeps_executed\": {},",
            self.substeps_executed
        );
        let _ = writeln!(
            json,
            "  \"rack_substeps_skipped\": {},",
            self.substeps_skipped
        );
        let _ = writeln!(json, "  \"events_fired\": {},", self.events_fired);
        let _ = writeln!(json, "  \"substep_reduction\": {:.3},", self.reduction);
        let _ = writeln!(json, "  \"reduction_gate\": 5.0,");
        let _ = writeln!(json, "  \"metrics_identical\": {},", self.identical);
        let _ = writeln!(json, "  \"pass\": {}", self.ok);
        let _ = writeln!(json, "}}");
        let path = out_dir.join("BENCH_event.json");
        std::fs::write(&path, json)?;
        println!(
            "event: {} of {} sub-steps executed ({:.1}x reduction, {} skipped), \
             identical: {}, pass: {}",
            self.substeps_executed,
            self.substeps_dense,
            self.reduction,
            self.substeps_skipped,
            self.identical,
            self.ok
        );
        Ok(())
    }
}

/// Shard count the sharded event backend is probed at.
const EVENT_SHARDED_SHARDS: usize = 4;

/// Racks in the probe scenario (`Scenario::row(3, 2, 2, _)`), used to turn
/// the dense sub-step count back into a batch count.
const EVENT_SHARDED_RACKS: u64 = 3 + 2 + 2;

/// Per-batch coordination budget for the sharded event backend, in
/// microseconds: frame building, channel handoff, the latch barrier, and
/// post-batch journaling across all shards. Generous on purpose — the gate
/// exists to catch regressions to per-rack or per-sub-step coordination
/// work, not to benchmark thread wakeup latency on a shared CI runner.
const EVENT_SHARDED_COORD_BUDGET_US: f64 = 500.0;

/// The sharded event backend triple: bit-identical to both the dense SoA
/// run and the single-threaded event backend, a sub-step reduction at least
/// as large as the single-threaded backend's, and coordination overhead
/// within [`EVENT_SHARDED_COORD_BUDGET_US`] per batch. All three gates are
/// core-count-independent: on a 1-CPU runner the parallel run records pure
/// coordination tax (never a speedup), and the gates still measure exactly
/// the properties the backend promises.
struct EventShardedProbe {
    dense_secs: f64,
    event_secs: f64,
    sharded_secs: f64,
    substeps_dense: u64,
    substeps_executed: u64,
    substeps_skipped: u64,
    offered_replays: u64,
    events_fired: u64,
    reduction_event: f64,
    reduction_sharded: f64,
    batches: u64,
    coord_overhead_us_per_batch: f64,
    identical: bool,
    ok: bool,
}

fn event_sharded_probe() -> EventShardedProbe {
    let scenario = || {
        Scenario::row(3, 2, 2, 7)
            .power_limit(Watts::from_kilowatts(190.0))
            .strategy(Strategy::PriorityAware)
            .discharge(DischargeLevel::Low)
            .tick(Seconds::new(1.0))
            .warmup(Seconds::from_hours(4.0))
            .max_horizon(Seconds::from_hours(2.5))
    };
    let (dense, dense_secs) = time(|| scenario().soa().build().run());

    recharge_telemetry::set_enabled(true);
    let executed_counter = recharge_telemetry::counter("sim.rack_substeps");
    let skipped_counter = recharge_telemetry::counter("sim.ticks_skipped");
    let events_counter = recharge_telemetry::counter("sim.events_fired");
    let replays_counter = recharge_telemetry::counter("sim.offered_replays");

    let event_executed_before = executed_counter.value();
    let (event, event_secs) = time(|| scenario().event_driven().build().run());
    let event_executed = executed_counter.value() - event_executed_before;

    let executed_before = executed_counter.value();
    let skipped_before = skipped_counter.value();
    let events_before = events_counter.value();
    let replays_before = replays_counter.value();
    let (sharded, sharded_secs) =
        time(|| scenario().event_sharded(EVENT_SHARDED_SHARDS).build().run());
    let substeps_executed = executed_counter.value() - executed_before;
    let substeps_skipped = skipped_counter.value() - skipped_before;
    let events_fired = events_counter.value() - events_before;
    let offered_replays = replays_counter.value() - replays_before;
    recharge_telemetry::set_enabled(false);

    let substeps_dense = substeps_executed + substeps_skipped;
    let reduction_event = substeps_dense as f64 / event_executed.max(1) as f64;
    let reduction_sharded = substeps_dense as f64 / substeps_executed.max(1) as f64;
    // One batch per control interval; the probe's control cadence is every
    // tick, so batches is exactly the dense per-rack sub-step count.
    let batches = substeps_dense / EVENT_SHARDED_RACKS;
    let coord_overhead_us_per_batch =
        (sharded_secs - event_secs).max(0.0) * 1e6 / batches.max(1) as f64;
    let identical = sharded == dense && event == dense;
    EventShardedProbe {
        dense_secs,
        event_secs,
        sharded_secs,
        substeps_dense,
        substeps_executed,
        substeps_skipped,
        offered_replays,
        events_fired,
        reduction_event,
        reduction_sharded,
        batches,
        coord_overhead_us_per_batch,
        identical,
        ok: identical
            && reduction_sharded >= reduction_event
            && coord_overhead_us_per_batch <= EVENT_SHARDED_COORD_BUDGET_US,
    }
}

impl EventShardedProbe {
    fn emit(&self, out_dir: &Path, cores: usize) -> std::io::Result<()> {
        let mut json = String::new();
        let _ = writeln!(json, "{{");
        let _ = writeln!(json, "  \"benchmark\": \"event_sharded\",");
        let _ = writeln!(json, "  \"cores\": {cores},");
        let _ = writeln!(json, "  \"shards\": {EVENT_SHARDED_SHARDS},");
        let _ = writeln!(json, "  \"dense_secs\": {:.6},", self.dense_secs);
        let _ = writeln!(json, "  \"event_secs\": {:.6},", self.event_secs);
        let _ = writeln!(json, "  \"sharded_secs\": {:.6},", self.sharded_secs);
        let _ = writeln!(json, "  \"rack_substeps_dense\": {},", self.substeps_dense);
        let _ = writeln!(
            json,
            "  \"rack_substeps_executed\": {},",
            self.substeps_executed
        );
        let _ = writeln!(
            json,
            "  \"rack_substeps_skipped\": {},",
            self.substeps_skipped
        );
        let _ = writeln!(json, "  \"offered_replays\": {},", self.offered_replays);
        let _ = writeln!(json, "  \"events_fired\": {},", self.events_fired);
        let _ = writeln!(
            json,
            "  \"substep_reduction_event\": {:.3},",
            self.reduction_event
        );
        let _ = writeln!(
            json,
            "  \"substep_reduction_sharded\": {:.3},",
            self.reduction_sharded
        );
        let _ = writeln!(json, "  \"batches\": {},", self.batches);
        let _ = writeln!(
            json,
            "  \"coord_overhead_us_per_batch\": {:.3},",
            self.coord_overhead_us_per_batch
        );
        let _ = writeln!(
            json,
            "  \"coord_budget_us_per_batch\": {EVENT_SHARDED_COORD_BUDGET_US},"
        );
        let _ = writeln!(json, "  \"metrics_identical\": {},", self.identical);
        let _ = writeln!(json, "  \"pass\": {}", self.ok);
        let _ = writeln!(json, "}}");
        let path = out_dir.join("BENCH_event_sharded.json");
        std::fs::write(&path, json)?;
        println!(
            "event_sharded: {} of {} sub-steps executed on {} shards \
             ({:.1}x vs {:.1}x single-threaded), {:.1} us/batch coordination \
             over {} batches, identical: {}, pass: {}",
            self.substeps_executed,
            self.substeps_dense,
            EVENT_SHARDED_SHARDS,
            self.reduction_sharded,
            self.reduction_event,
            self.coord_overhead_us_per_batch,
            self.batches,
            self.identical,
            self.ok
        );
        Ok(())
    }
}

/// The controller-HA probe: hot-standby control plane cost and failover
/// behaviour.
///
/// Gates on three claims from the HA design (DESIGN.md §17): the fault-free
/// hot-standby run is bit-identical to the single-controller run; the
/// steady-state replication cost — serializing the paper-scale MSB brain,
/// amortized over the snapshot cadence — is at most 2 % of a simulation
/// tick; and a kill-the-leader run completes its takeover within one lease
/// width plus one control interval of detection slack, with the breaker
/// closed and every SLA met throughout. Decode + restore runs only on the
/// takeover path, so it is reported (`restore_ns`) but not amortized.
struct HaProbe {
    snapshot_ns: f64,
    restore_ns: f64,
    snapshot_bytes: usize,
    tick_secs: f64,
    overhead_frac: f64,
    failover_ticks: f64,
    failover_budget_ticks: u64,
    failovers: u64,
    identical: bool,
    chaos_clean: bool,
    ok: bool,
}

const HA_OVERHEAD_GATE: f64 = 0.02;

fn ha_probe() -> HaProbe {
    use recharge_dynamo::{Controller, ControllerConfig, InMemoryBus};
    use recharge_ha::{ControllerSet, HaConfig};
    use recharge_net::ProcessFault;
    use recharge_telemetry::FlightKind;
    use recharge_units::{DeviceId, SimTime};

    const CONTROL_EVERY: usize = 5;
    // Paper scale: the 316-rack MSB of §V-B, so the snapshot cost and the
    // tick cost amortize at a realistic tracked-population size.
    let scenario = || Scenario::paper_msb(7).control_every(CONTROL_EVERY);
    let ha_cfg = || HaConfig::default().seed(0x0000_4A5E);
    recharge_telemetry::set_enabled(false);
    recharge_telemetry::set_recorder_enabled(false);

    // Fault-free equivalence, timing the single-controller twin for the
    // per-simulation-tick denominator (one series point per control
    // interval of `CONTROL_EVERY` one-second ticks).
    let (single, single_secs) = time(|| scenario().build().run());
    let (ha_run, _) = time(|| scenario().ha(ha_cfg()).build().run());
    let identical = single == ha_run;
    let sim_ticks = single.series.len().max(1) * CONTROL_EVERY;
    let tick_secs = single_secs / sim_ticks as f64;

    // A leader brain with the full MSB tracked population: discharge every
    // rack, restore power, and let the controller admit the fleet.
    let fleet = || {
        let mut agents = Vec::new();
        let (p1, p2, p3) = (89usize, 142, 85);
        for (priority, count) in [(Priority::P1, p1), (Priority::P2, p2), (Priority::P3, p3)] {
            for _ in 0..count {
                agents.push(
                    SimRackAgent::builder(RackId::new(agents.len() as u32), priority)
                        .offered_load(Watts::from_kilowatts(6.33))
                        .build(),
                );
            }
        }
        InMemoryBus::new(agents)
    };
    let mut bus = fleet();
    for a in bus.agents_mut() {
        a.set_input_power(false);
    }
    for a in bus.agents_mut() {
        a.step(Seconds::new(120.0));
    }
    for a in bus.agents_mut() {
        a.set_input_power(true);
    }
    let config = ControllerConfig::new(DeviceId::new(0), Watts::from_megawatts(2.5));
    let mut leader = Controller::new(config.clone(), Strategy::PriorityAware);
    for t in 0..5u64 {
        leader.tick(SimTime::from_secs(t as f64), &mut bus);
        for a in bus.agents_mut() {
            a.step(Seconds::new(1.0));
        }
    }
    let snapshot_bytes = leader.snapshot().to_bytes().len();

    // Steady state is serialize-only: the leader's per-cadence hot path is
    // `snapshot().to_bytes()` plus handing the buffer to the standby store.
    const OPS: u32 = 10_000;
    let mut stored = Vec::new();
    let (_, snap_secs) = time(|| {
        for _ in 0..OPS {
            stored = leader.snapshot().to_bytes();
        }
    });
    let snapshot_ns = snap_secs * 1e9 / f64::from(OPS);

    // Decode + restore: paid once per takeover, never per tick.
    const RESTORES: u32 = 1_000;
    let mut standby = Controller::new(config, Strategy::PriorityAware);
    let (_, restore_secs) = time(|| {
        for _ in 0..RESTORES {
            let decoded = recharge_dynamo::ControllerSnapshot::from_bytes(&stored)
                .expect("snapshot bytes must decode");
            standby.restore(&decoded);
        }
    });
    let restore_ns = restore_secs * 1e9 / f64::from(RESTORES);

    // One snapshot per `snapshot_every` simulation ticks.
    let overhead_frac = snapshot_ns * 1e-9 / ha_cfg().snapshot_every as f64 / tick_secs.max(1e-12);

    // Kill-the-leader: crash the deterministic tick-0 winner mid-recharge
    // and read the takeover window off the flight journal.
    let first = {
        let mut probe = ControllerSet::new(
            ControllerConfig::new(DeviceId::new(0), Watts::from_kilowatts(190.0)),
            Strategy::PriorityAware,
            ha_cfg(),
        );
        let mut bus = fleet();
        probe.tick(0, SimTime::ZERO, &mut bus);
        probe.leader().expect("probe election must succeed")
    };
    recharge_telemetry::set_recorder_enabled(true);
    let _ = recharge_telemetry::take_flight_events();
    let chaos_cfg = ha_cfg().fault(ProcessFault::CrashController {
        controller: first,
        at_tick: 600,
    });
    let lease = chaos_cfg.lease_ticks;
    let (chaos, _) = time(|| scenario().ha(chaos_cfg).build().run());
    recharge_telemetry::set_recorder_enabled(false);
    let events = recharge_telemetry::take_flight_events();

    let lost_at = events
        .iter()
        .find(|e| e.kind == FlightKind::LeaderLost)
        .map(|e| e.at());
    let takeover_at = events
        .iter()
        .find(|e| e.kind == FlightKind::TakeoverComplete)
        .map(|e| e.at());
    let failover_ticks = match (lost_at, takeover_at) {
        (Some(lost), Some(takeover)) => takeover - lost, // 1 s ticks
        _ => f64::INFINITY,
    };
    let failover_budget_ticks = lease + CONTROL_EVERY as u64;
    let failovers = events
        .iter()
        .filter(|e| e.kind == FlightKind::TakeoverComplete)
        .count() as u64;
    let chaos_clean = !chaos.breaker_tripped && chaos.rack_outcomes.iter().all(|o| o.sla_met);

    HaProbe {
        snapshot_ns,
        restore_ns,
        snapshot_bytes,
        tick_secs,
        overhead_frac,
        failover_ticks,
        failover_budget_ticks,
        failovers,
        identical,
        chaos_clean,
        ok: identical
            && chaos_clean
            && overhead_frac < HA_OVERHEAD_GATE
            && failovers == 1
            && failover_ticks > 0.0
            && failover_ticks <= failover_budget_ticks as f64,
    }
}

impl HaProbe {
    fn emit(&self, out_dir: &Path, cores: usize) -> std::io::Result<()> {
        let mut json = String::new();
        let _ = writeln!(json, "{{");
        let _ = writeln!(json, "  \"benchmark\": \"ha\",");
        let _ = writeln!(json, "  \"cores\": {cores},");
        let _ = writeln!(json, "  \"snapshot_ns\": {:.3},", self.snapshot_ns);
        let _ = writeln!(json, "  \"restore_ns\": {:.3},", self.restore_ns);
        let _ = writeln!(json, "  \"snapshot_bytes\": {},", self.snapshot_bytes);
        let _ = writeln!(json, "  \"tick_secs\": {:.9},", self.tick_secs);
        let _ = writeln!(
            json,
            "  \"replication_overhead_frac\": {:.9},",
            self.overhead_frac
        );
        let _ = writeln!(json, "  \"overhead_gate\": {HA_OVERHEAD_GATE},");
        let _ = writeln!(json, "  \"failover_ticks\": {:.3},", self.failover_ticks);
        let _ = writeln!(
            json,
            "  \"failover_budget_ticks\": {},",
            self.failover_budget_ticks
        );
        let _ = writeln!(json, "  \"failovers\": {},", self.failovers);
        let _ = writeln!(json, "  \"metrics_identical\": {},", self.identical);
        let _ = writeln!(json, "  \"chaos_clean\": {},", self.chaos_clean);
        let _ = writeln!(json, "  \"pass\": {}", self.ok);
        let _ = writeln!(json, "}}");
        std::fs::write(out_dir.join("BENCH_ha.json"), json)?;
        println!(
            "ha: snapshot {:.1} ns / restore {:.1} ns ({} B), replication overhead \
             {:.5}% of a tick, failover {:.0}/{} ticks, identical: {}, chaos clean: {}, \
             pass: {}",
            self.snapshot_ns,
            self.restore_ns,
            self.snapshot_bytes,
            self.overhead_frac * 100.0,
            self.failover_ticks,
            self.failover_budget_ticks,
            self.identical,
            self.chaos_clean,
            self.ok
        );
        Ok(())
    }
}

/// One consolidated `BENCH_summary.json` over every probe: name, pass flag,
/// and the probe's headline figure, so CI can gate (and humans skim) one
/// file instead of seven.
struct Summary {
    entries: Vec<(String, bool, String)>,
}

impl Summary {
    fn new() -> Self {
        Summary {
            entries: Vec::new(),
        }
    }

    fn push(&mut self, name: &str, pass: bool, headline: String) {
        self.entries.push((name.to_owned(), pass, headline));
    }

    fn emit(&self, out_dir: &Path, cores: usize) -> std::io::Result<()> {
        let all_pass = self.entries.iter().all(|&(_, pass, _)| pass);
        let mut json = String::new();
        let _ = writeln!(json, "{{");
        let _ = writeln!(json, "  \"report\": \"bench_summary\",");
        let _ = writeln!(json, "  \"cores\": {cores},");
        let _ = writeln!(json, "  \"pass\": {all_pass},");
        let _ = writeln!(json, "  \"benchmarks\": [");
        for (i, (name, pass, headline)) in self.entries.iter().enumerate() {
            let comma = if i + 1 == self.entries.len() { "" } else { "," };
            let _ = writeln!(
                json,
                "    {{\"name\": \"{name}\", \"pass\": {pass}, {headline}}}{comma}"
            );
        }
        let _ = writeln!(json, "  ]");
        let _ = writeln!(json, "}}");
        std::fs::write(out_dir.join("BENCH_summary.json"), json)
    }
}

fn main() -> ExitCode {
    let out = std::env::args().nth(1).unwrap_or_else(|| ".".to_owned());
    let out_dir = Path::new(&out).to_path_buf();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "bench_report: {cores} core(s), writing to {}",
        out_dir.display()
    );

    let mut summary = Summary::new();
    let pairs = [
        parallel_montecarlo(cores),
        parallel_physical_aor(cores),
        memoized_policy(),
        sharded_sim(cores),
    ];
    let mut ok = true;
    for pair in &pairs {
        if let Err(e) = pair.emit(&out_dir, cores) {
            eprintln!("failed to write BENCH_{}.json: {e}", pair.name);
            ok = false;
        }
        ok &= pair.identical;
        summary.push(
            pair.name,
            pair.identical,
            format!(
                "\"speedup\": {:.3}",
                pair.serial_secs / pair.fast_secs.max(1e-12)
            ),
        );
    }

    let backend = backend_probe();
    if let Err(e) = backend.emit(&out_dir, cores) {
        eprintln!("failed to write BENCH_backend.json: {e}");
        ok = false;
    }
    ok &= backend.identical;
    summary.push(
        "backend",
        backend.identical,
        format!(
            "\"batched_speedup\": {:.3}",
            backend.per_tick_secs / backend.batched_secs.max(1e-12)
        ),
    );

    let probe = telemetry_probe();
    if let Err(e) = probe.emit(&out_dir) {
        eprintln!("failed to write BENCH_telemetry.json: {e}");
        ok = false;
    }
    ok &= probe.ok;
    summary.push(
        "telemetry",
        probe.ok,
        format!("\"disabled_overhead_frac\": {:.9}", probe.overhead_frac),
    );

    let obs = obs_probe();
    if let Err(e) = obs.emit(&out_dir, cores) {
        eprintln!("failed to write BENCH_obs.json: {e}");
        ok = false;
    }
    ok &= obs.ok;
    summary.push(
        "obs",
        obs.ok,
        format!("\"recorder_overhead_frac\": {:.9}", obs.overhead_frac),
    );

    let net = net_probe();
    if let Err(e) = net.emit(&out_dir, cores) {
        eprintln!("failed to write BENCH_net.json: {e}");
        ok = false;
    }
    ok &= net.identical && net.chaos_ok;
    summary.push(
        "net",
        net.identical && net.chaos_ok,
        format!(
            "\"rpc_overhead_us_per_tick\": {:.3}",
            (net.rpc_secs - net.serial_secs) * 1e6 / net.ticks.max(1) as f64
        ),
    );

    let sharded_net = sharded_net_probe();
    if let Err(e) = sharded_net.emit(&out_dir, cores) {
        eprintln!("failed to write BENCH_net_sharded.json: {e}");
        ok = false;
    }
    ok &= sharded_net.identical && sharded_net.rpc_economy_ok;
    summary.push(
        "net_sharded",
        sharded_net.identical && sharded_net.rpc_economy_ok,
        format!(
            "\"max_rpcs_per_shard_per_control_tick\": {:.3}",
            sharded_net
                .rows
                .iter()
                .map(|r| r.rpc_calls as f64
                    / (r.shards as f64 * sharded_net.control_ticks.max(1) as f64))
                .fold(0.0, f64::max)
        ),
    );

    let scale = scale_probe(cores);
    if let Err(e) = scale.emit(&out_dir, cores) {
        eprintln!("failed to write BENCH_scale.json: {e}");
        ok = false;
    }
    ok &= scale.pass;
    summary.push(
        "scale",
        scale.pass,
        format!(
            "\"racks\": {}, \"ns_per_rack_step\": {:.3}",
            scale.racks, scale.ns_per_rack_step
        ),
    );

    let event = event_probe();
    if let Err(e) = event.emit(&out_dir, cores) {
        eprintln!("failed to write BENCH_event.json: {e}");
        ok = false;
    }
    ok &= event.ok;
    summary.push(
        "event",
        event.ok,
        format!("\"substep_reduction\": {:.3}", event.reduction),
    );

    let event_sharded = event_sharded_probe();
    if let Err(e) = event_sharded.emit(&out_dir, cores) {
        eprintln!("failed to write BENCH_event_sharded.json: {e}");
        ok = false;
    }
    ok &= event_sharded.ok;
    summary.push(
        "event_sharded",
        event_sharded.ok,
        format!(
            "\"substep_reduction\": {:.3}, \"coord_overhead_us_per_batch\": {:.3}",
            event_sharded.reduction_sharded, event_sharded.coord_overhead_us_per_batch
        ),
    );

    let ha = ha_probe();
    if let Err(e) = ha.emit(&out_dir, cores) {
        eprintln!("failed to write BENCH_ha.json: {e}");
        ok = false;
    }
    ok &= ha.ok;
    summary.push(
        "ha",
        ha.ok,
        format!(
            "\"replication_overhead_frac\": {:.9}, \"failover_ticks\": {:.3}",
            ha.overhead_frac, ha.failover_ticks
        ),
    );

    if let Err(e) = summary.emit(&out_dir, cores) {
        eprintln!("failed to write BENCH_summary.json: {e}");
        ok = false;
    }

    if ok {
        ExitCode::SUCCESS
    } else {
        eprintln!("fast-path mismatch or write failure — see output above");
        ExitCode::from(1)
    }
}
