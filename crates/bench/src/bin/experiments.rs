//! CLI entry point regenerating the paper's tables and figures.
//!
//! ```text
//! experiments <id>...   # e.g. experiments fig13 tab3
//! experiments all       # everything, in paper order
//! experiments --list    # available ids
//! ```
//!
//! Set `RECHARGE_FAST=1` to thin sweeps and shrink fleets for a quick pass.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: experiments <id>... | all | --list");
        eprintln!("ids: {}", recharge_bench::all_ids().join(", "));
        eprintln!("env: RECHARGE_FAST=1 for a reduced-scale quick pass");
        return ExitCode::from(2);
    }
    if args.iter().any(|a| a == "--list") {
        for id in recharge_bench::all_ids() {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }

    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        recharge_bench::all_ids()
    } else {
        args.iter().map(String::as_str).collect()
    };

    let mut failed = false;
    for id in ids {
        match recharge_bench::run(id) {
            Some(report) => {
                println!("{}", report.render());
            }
            None => {
                eprintln!("unknown experiment id: {id}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
