//! Plain-text table rendering for experiment reports.

/// A simple column-aligned text table.
///
/// # Examples
///
/// ```
/// use recharge_bench::Table;
///
/// let mut t = Table::new(&["DOD", "1 A", "5 A"]);
/// t.row(&["100%", "134.0", "33.5"]);
/// let text = t.render();
/// assert!(text.contains("DOD"));
/// assert!(text.lines().count() >= 3);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; missing cells render empty, extras are kept.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) -> &mut Self {
        self.rows
            .push(cells.iter().map(|s| s.as_ref().to_owned()).collect());
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns and a header rule.
    #[must_use]
    pub fn render(&self) -> String {
        let columns = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; columns];
        fn cell(row: &[String], i: usize) -> &str {
            row.get(i).map_or("", String::as_str)
        }
        for (i, width) in widths.iter_mut().enumerate() {
            *width = std::iter::once(cell(&self.headers, i).len())
                .chain(self.rows.iter().map(|r| cell(r, i).len()))
                .max()
                .unwrap_or(0);
        }

        let render_row = |row: &[String]| -> String {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cell(row, i), width = width));
            }
            line.trim_end().to_owned()
        };

        let mut out = render_row(&self.headers);
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_rule() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(&["xxxx", "1"]).row(&["y", "22"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "long-header" starts at the same offset everywhere.
        let col = lines[0].find("long-header").unwrap();
        assert_eq!(&lines[2][col..col + 1], "1");
    }

    #[test]
    fn ragged_rows_are_tolerated() {
        let mut t = Table::new(&["a"]);
        t.row(&["1", "2", "3"]);
        t.row::<&str>(&[]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let text = t.render();
        assert!(text.contains('3'));
    }
}
