//! Table III: maximum server power capping required for the six Fig 13
//! cases under each deployment.

use crate::experiments::common::Deployment;
use crate::experiments::fig13;
use crate::{ExperimentReport, Table};

/// Runs the Fig 13 simulations and prints the Table III capping matrix.
#[must_use]
pub fn run() -> ExperimentReport {
    let results = fig13::results();

    let mut table = Table::new(&[
        "case",
        "original charger",
        "variable charger",
        "priority-aware",
    ]);
    for (case, ..) in fig13::cases() {
        let mut cells = vec![case.to_owned()];
        for deployment in Deployment::ALL {
            let r = results
                .iter()
                .find(|r| r.case == case && r.deployment == deployment)
                .expect("all case × deployment combinations were run");
            let scale = 316.0 / r.metrics.rack_outcomes.len().max(1) as f64;
            let kw = r.metrics.max_capped_power.as_kilowatts() * scale;
            let pct = r.metrics.max_capped_fraction() * 100.0;
            cells.push(format!("{kw:.0} kW ({pct:.0}%)"));
        }
        table.row(&cells);
    }

    let summary = "paper: original 149-405 kW (7-20%); variable 0-171 kW (0-8%); \
                   priority-aware 0 kW (0%) in every case.\n\
                   paper threshold: with priority-aware charging, capping only begins once \
                   available power drops below ~120 kW (limit under ~2.2 MW)."
        .to_owned();

    ExperimentReport {
        id: "tab3",
        title: "Maximum server power capping for the six Fig 13 cases (Table III)",
        sections: vec![table.render(), summary],
    }
}
