//! Table I: component failure and repair times (input data, reproduced
//! verbatim).

use recharge_reliability::table1;

use crate::{ExperimentReport, Table};

/// Prints Table I exactly as published.
#[must_use]
pub fn run() -> ExperimentReport {
    let mut out = Table::new(&[
        "failure type",
        "component",
        "MTBF (hours)",
        "MTTR (hours)",
        "events/yr",
    ]);
    for src in table1::standard_sources() {
        out.row(&[
            src.failure_type.to_string(),
            src.component.to_string(),
            format!("{:.2e}", src.mtbf_hours),
            format!("{:.1}", src.mttr_hours),
            format!("{:.3}", src.events_per_year()),
        ]);
    }

    ExperimentReport {
        id: "tab1",
        title: "Component failure and repair times (Table I, exact input data)",
        sections: vec![
            out.render(),
            "open transitions: exponential, 45 s mean; annual maintenance intervals: \
             Normal(1 yr, σ = 41 days); all other inter-failure and repair times exponential."
                .to_owned(),
        ],
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn eleven_rows_present() {
        let text = super::run().render();
        assert!(text.matches("maintenance").count() >= 6);
        assert!(text.contains("6.39e3") || text.contains("6.39E3") || text.contains("6.39"));
    }
}
