//! Shared configuration for the MSB-scale simulation experiments.

use recharge_battery::ChargePolicy;
use recharge_dynamo::Strategy;
use recharge_sim::{DischargeLevel, Scenario};
use recharge_units::Watts;

use crate::fast_mode;

/// The three charger deployments Fig 13 / Table III compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Deployment {
    /// The original 5 A charger, no coordination.
    OriginalCharger,
    /// The variable (Eq. 1) charger, no coordination.
    VariableCharger,
    /// The variable charger under coordinated priority-aware control.
    PriorityAware,
}

impl Deployment {
    /// All deployments in the paper's comparison order.
    pub const ALL: [Deployment; 3] = [
        Deployment::OriginalCharger,
        Deployment::VariableCharger,
        Deployment::PriorityAware,
    ];

    /// Short label used in report tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Deployment::OriginalCharger => "original charger",
            Deployment::VariableCharger => "variable charger",
            Deployment::PriorityAware => "priority-aware",
        }
    }

    fn strategy(self) -> Strategy {
        match self {
            Deployment::OriginalCharger | Deployment::VariableCharger => Strategy::Uncoordinated,
            Deployment::PriorityAware => Strategy::PriorityAware,
        }
    }

    fn charge_policy(self) -> ChargePolicy {
        match self {
            Deployment::OriginalCharger => ChargePolicy::Original,
            Deployment::VariableCharger | Deployment::PriorityAware => ChargePolicy::Variable,
        }
    }
}

/// The fleet-size divisor in effect: 1 normally, 4 in fast mode (79 racks
/// with proportionally scaled limits — the dynamics are scale-free because
/// both load and recharge power scale with rack count).
#[must_use]
pub fn scale_divisor() -> usize {
    if fast_mode() {
        4
    } else {
        1
    }
}

/// The paper's MSB priority mix (89/142/85), divided by the scale divisor.
#[must_use]
pub fn paper_counts() -> (usize, usize, usize) {
    let d = scale_divisor();
    (89 / d, 142 / d, 85 / d)
}

/// Builds an MSB-scale scenario for a deployment: `limit_mw` is the
/// full-scale breaker limit (scaled along with the fleet in fast mode).
#[must_use]
pub fn msb_scenario(
    counts: (usize, usize, usize),
    limit_mw: f64,
    discharge: DischargeLevel,
    deployment: Deployment,
    strategy_override: Option<Strategy>,
    seed: u64,
) -> Scenario {
    let total_full_scale = 316.0;
    let total = (counts.0 + counts.1 + counts.2) as f64;
    let limit = Watts::from_megawatts(limit_mw * total / total_full_scale);
    Scenario::paper_msb(seed)
        .priority_counts(counts.0, counts.1, counts.2)
        .power_limit(limit)
        .strategy(strategy_override.unwrap_or_else(|| deployment.strategy()))
        .charge_policy(deployment.charge_policy())
        .discharge(discharge)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deployment_mapping() {
        assert_eq!(
            Deployment::OriginalCharger.charge_policy(),
            ChargePolicy::Original
        );
        assert_eq!(
            Deployment::PriorityAware.strategy(),
            Strategy::PriorityAware
        );
        assert_eq!(
            Deployment::VariableCharger.strategy(),
            Strategy::Uncoordinated
        );
        assert_eq!(Deployment::OriginalCharger.label(), "original charger");
    }

    #[test]
    fn scenario_limit_scales_with_fleet() {
        let s = msb_scenario(
            (89, 142, 85),
            2.5,
            DischargeLevel::Medium,
            Deployment::PriorityAware,
            None,
            1,
        );
        // Full fleet: full limit.
        assert!((s.limit().as_megawatts() - 2.5).abs() < 1e-9);
    }
}
