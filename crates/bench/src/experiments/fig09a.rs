//! Fig 9(a): availability of redundancy versus battery charging time.

use recharge_reliability::{table1, AorSimulation};
use recharge_units::Seconds;

use crate::{fast_mode, ExperimentReport, Table};

/// Runs the Monte-Carlo AOR sweep over one shared 10⁵-year event stream
/// (10³ years in fast mode).
#[must_use]
pub fn run() -> ExperimentReport {
    let horizon_years = if fast_mode() { 1_000.0 } else { 100_000.0 };
    let sim = AorSimulation::new(table1::standard_sources());
    let times: Vec<Seconds> = (0..=9)
        .map(|i| Seconds::from_minutes(f64::from(i) * 10.0))
        .collect();
    let curve = sim.aor_curve(horizon_years, 0xA09A, &times);

    let mut out = Table::new(&[
        "charging time (min)",
        "AOR (%)",
        "loss of redundancy (h/yr)",
    ]);
    for &(t, aor) in &curve.points {
        out.row(&[
            format!("{:.0}", t.as_minutes()),
            format!("{:.4}", aor * 100.0),
            format!("{:.2}", (1.0 - aor) * 8_760.0),
        ]);
    }

    let summary = format!(
        "horizon: {horizon_years:.0} simulated years, Table I failure data\n\
         paper: AOR decreases linearly with charging time;\n\
         measured slope: {:.3e} AOR/min, max deviation from linear fit: {:.2e}\n\
         paper anchors: 30 min → 99.94%, 60 min → 99.90%, 90 min → 99.85%",
        curve.slope_per_minute(),
        curve.max_deviation_from_linear(),
    );

    ExperimentReport {
        id: "fig9a",
        title: "Availability of redundancy vs battery charging time (Monte Carlo)",
        sections: vec![out.render(), summary],
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn curve_renders_in_fast_mode() {
        // The test environment always uses a short horizon directly.
        std::env::set_var("RECHARGE_FAST", "1");
        let text = super::run().render();
        assert!(text.contains("AOR"));
        assert!(text.contains("measured slope"));
    }
}
