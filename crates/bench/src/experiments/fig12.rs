//! Fig 12: aggregate power of the evaluation MSB over one week.

use recharge_trace::{find_peak, sample_aggregate, SyntheticFleet};
use recharge_units::{Seconds, SimTime};

use crate::{ExperimentReport, Table};

/// Samples the synthetic 316-rack MSB trace hourly for a week and reports the
/// diurnal envelope the paper shows (1.9–2.1 MW).
#[must_use]
pub fn run() -> ExperimentReport {
    let fleet = SyntheticFleet::paper_msb(0xF16);
    let week = SimTime::from_secs(7.0 * 24.0 * 3_600.0);

    let mut out = Table::new(&["day", "min (MW)", "max (MW)", "mean (MW)"]);
    let mut overall_min = f64::INFINITY;
    let mut overall_max = f64::NEG_INFINITY;
    for day in 0..7 {
        let start = SimTime::from_secs(f64::from(day) * 86_400.0);
        let end = start + Seconds::from_hours(24.0);
        let points = sample_aggregate(&fleet, start, end, Seconds::from_minutes(30.0));
        let mws: Vec<f64> = points.iter().map(|p| p.power.as_megawatts()).collect();
        let min = mws.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = mws.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mean = mws.iter().sum::<f64>() / mws.len() as f64;
        overall_min = overall_min.min(min);
        overall_max = overall_max.max(max);
        out.row(&[
            format!("{}", day + 1),
            format!("{min:.3}"),
            format!("{max:.3}"),
            format!("{mean:.3}"),
        ]);
    }

    let peak = find_peak(&fleet, SimTime::ZERO, week, Seconds::from_minutes(10.0))
        .expect("non-empty window");
    let summary = format!(
        "fleet: 89 P1 + 142 P2 + 85 P3 = 316 racks (the paper's MSB)\n\
         weekly envelope: {overall_min:.2}-{overall_max:.2} MW (paper: 1.9-2.1 MW diurnal)\n\
         first weekly peak: {:.3} MW at t+{:.1} h — open transitions are injected there",
        peak.power.as_megawatts(),
        peak.at.as_secs() / 3_600.0,
    );

    ExperimentReport {
        id: "fig12",
        title: "Aggregate MSB power over one week (synthetic production trace)",
        sections: vec![out.render(), summary],
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn envelope_matches_paper() {
        let text = super::run().render();
        assert!(text.contains("weekly envelope"));
        assert!(text.contains("316 racks"));
    }
}
