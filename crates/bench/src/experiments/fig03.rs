//! Fig 3: charging of one BBU after a full 90-second discharge.

use recharge_battery::{BbuPack, BbuParams, ChargePhase};
use recharge_units::{Amperes, Dod, Seconds};

use crate::{ExperimentReport, Table};

/// Runs the Fig 3 lab experiment: a fully discharged BBU on the original 5 A
/// charger, sampled once per minute.
#[must_use]
pub fn run() -> ExperimentReport {
    let mut pack = BbuPack::discharged(BbuParams::production(), Dod::FULL);
    let setpoint = Amperes::new(5.0);
    let dt = Seconds::new(1.0);

    let mut table = Table::new(&["minute", "phase", "current (A)", "voltage (V)", "power (W)"]);
    let mut elapsed = Seconds::ZERO;
    let mut cc_end: Option<f64> = None;
    while !pack.is_fully_charged() && elapsed < Seconds::from_hours(2.0) {
        let step = pack.charge_step(setpoint, dt);
        if step.phase == ChargePhase::ConstantVoltage && cc_end.is_none() {
            cc_end = Some(elapsed.as_minutes());
        }
        if (elapsed.as_secs() as u64).is_multiple_of(60) {
            let phase = match step.phase {
                ChargePhase::ConstantCurrent => "CC",
                ChargePhase::ConstantVoltage => "CV",
                ChargePhase::Complete => "done",
            };
            table.row(&[
                format!("{:.0}", elapsed.as_minutes()),
                phase.to_owned(),
                format!("{:.2}", step.current.as_amps()),
                format!("{:.2}", step.terminal_voltage.as_volts()),
                format!("{:.0}", step.wall_power.as_watts()),
            ]);
        }
        elapsed += dt;
    }

    let summary = format!(
        "CC phase ends at {:.1} min (paper: ~20 min, at 52 V)\n\
         full charge completes at {:.1} min (paper: ~36 min, current < 400 mA)",
        cc_end.unwrap_or(f64::NAN),
        elapsed.as_minutes(),
    );

    ExperimentReport {
        id: "fig3",
        title: "BBU charge sequence after a full discharge (5 A CC-CV)",
        sections: vec![table.render(), summary],
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_contains_both_phases() {
        let r = super::run();
        let text = r.render();
        assert!(text.contains("CC"));
        assert!(text.contains("CV"));
        assert!(text.contains("full charge completes"));
    }
}
