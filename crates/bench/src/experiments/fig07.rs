//! Fig 7 (production validation): a 14-rack row rides a 60-second open
//! transition; the new variable charger starts at 2 A instead of 5 A.

use recharge_battery::ChargePolicy;
use recharge_dynamo::Strategy;
use recharge_sim::{RunMetrics, Scenario};
use recharge_units::Seconds;

use crate::{ExperimentReport, Table};

fn row_run(policy: ChargePolicy) -> RunMetrics {
    Scenario::row(5, 5, 4, 0xF07)
        .strategy(Strategy::Uncoordinated)
        .charge_policy(policy)
        .open_transition_duration(Seconds::new(60.0))
        .build()
        .run()
}

/// Runs the production-validation test with the variable charger and the
/// original-charger counterfactual the paper quotes.
#[must_use]
pub fn run() -> ExperimentReport {
    let variable = row_run(ChargePolicy::Variable);
    let original = row_run(ChargePolicy::Original);

    let mut table = Table::new(&[
        "quantity",
        "paper",
        "variable (measured)",
        "original (measured)",
    ]);
    table.row(&[
        "mean depth of discharge",
        "≈20% (all <50%)",
        &format!("{:.0}%", variable.mean_event_dod().as_percent()),
        &format!("{:.0}%", original.mean_event_dod().as_percent()),
    ]);
    table.row(&[
        "recharge power spike",
        "≈10 kW (26 kW if original)",
        &format!("{:.1} kW", variable.spike_magnitude().as_kilowatts()),
        &format!("{:.1} kW", original.spike_magnitude().as_kilowatts()),
    ]);
    let reduction = 1.0 - variable.spike_magnitude() / original.spike_magnitude();
    table.row(&[
        "spike reduction",
        "≈60%",
        &format!("{:.0}%", reduction * 100.0),
        "-",
    ]);

    let charge_minutes = variable
        .rack_outcomes
        .iter()
        .filter_map(|o| o.charge_duration)
        .map(Seconds::as_minutes)
        .fold(0.0f64, f64::max);
    let notes = format!(
        "14 racks under one 190 kW RPP, 60 s open transition; every BBU below 50% DOD starts \
         at 2 A.\nslowest rack fully charged in {charge_minutes:.0} min (paper: ≈45 min; the \
         low-DOD CV tail is faster in the equivalent-circuit model, see EXPERIMENTS.md)."
    );

    ExperimentReport {
        id: "fig7",
        title: "Production validation: variable charger cuts the row recharge spike by ~60%",
        sections: vec![table.render(), notes],
    }
}
