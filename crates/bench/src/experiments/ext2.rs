//! Extension 2: the redundancy cost of coordination, measured physically.
//!
//! §V-B2 ends with the trade the paper accepts: "our solution would slow down
//! the battery charging process and compromise the redundancy. However, we
//! prefer to relax the redundancy provided by the batteries to minimize
//! performance degradation." This experiment quantifies that trade by
//! replaying Table I failure events through the calibrated battery with
//! different charging rules and measuring the emergent AOR.

use recharge_battery::{variable_current, ChargePolicy, ChargeTimeTable};
use recharge_core::SlaCurrentPolicy;
use recharge_reliability::{table1, AorSimulation, PhysicalAorSimulation};
use recharge_units::{Amperes, Priority, Watts};

use crate::{fast_mode, ExperimentReport, Table};

/// A labelled charging rule: (name, annotation, DOD → current).
type LabelledRule<'a> = (
    String,
    String,
    Box<dyn FnMut(recharge_units::Dod) -> Amperes + 'a>,
);

/// Runs the physical-AOR comparison across charging rules.
#[must_use]
pub fn run() -> ExperimentReport {
    let horizon = if fast_mode() { 1_000.0 } else { 10_000.0 };
    let sim = PhysicalAorSimulation::new(
        AorSimulation::new(table1::standard_sources()),
        Watts::from_kilowatts(6.33),
    );
    let table = ChargeTimeTable::production();
    let policy = SlaCurrentPolicy::production();

    let mut out = Table::new(&[
        "charging rule",
        "AOR (%)",
        "loss of redundancy (h/yr)",
        "mean charge time (min)",
        "target",
    ]);
    let mut rows: Vec<LabelledRule<'_>> = vec![
        (
            "original 5 A charger".into(),
            "(fastest possible)".into(),
            Box::new(|dod| ChargePolicy::Original.automatic_current(dod)),
        ),
        (
            "variable charger (Eq. 1)".into(),
            "≤45 min bound".into(),
            Box::new(variable_current),
        ),
    ];
    for priority in Priority::ALL {
        let policy = &policy;
        rows.push((
            format!("SLA rule for {priority}"),
            format!("{:.2}%", policy.sla().aor_target(priority) * 100.0),
            Box::new(move |dod| policy.sla_current(priority, dod)),
        ));
    }
    rows.push((
        "throttled to 1 A (worst coordination)".into(),
        "≥ P3's 99.85%".into(),
        Box::new(|_| Amperes::MIN_CHARGE),
    ));

    for (name, target, mut rule) in rows {
        let report = sim.run_with(horizon, 0xE072, table, &mut rule);
        out.row(&[
            name,
            format!("{:.4}", report.aor * 100.0),
            format!("{:.2}", (1.0 - report.aor) * 8_760.0),
            format!("{:.1}", report.mean_charge_time.as_minutes()),
            target,
        ]);
    }

    let notes = format!(
        "one shared {horizon:.0}-year Table I event stream, 6.33 kW rack load, calibrated \
         battery.\nshape: each priority's Fig 9(b) SLA rule lands at or above its Table II \
         AOR target, and even permanent 1 A throttling keeps AOR above the P3 target — the \
         redundancy the paper trades away under power constraint is bounded and small."
    );

    ExperimentReport {
        id: "ext2",
        title: "Extension: physically measured AOR under each charging rule",
        sections: vec![out.render(), notes],
    }
}
