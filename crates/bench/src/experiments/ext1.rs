//! Extension 1 (§IV-A future work): postponing battery charging entirely
//! instead of capping servers under extreme power constraint.
//!
//! The paper: "capping would begin if the available power was less than
//! 120 kW (power limit below 2.2 MW)" — because the charger hardware bottoms
//! out at 1 A per BBU. With postponing, that floor disappears: charging can
//! be deferred rack-by-rack (lowest priority, highest DOD first), trading
//! those racks' redundancy for zero server impact.

use recharge_sim::DischargeLevel;
use recharge_units::Priority;

use crate::experiments::common::{msb_scenario, paper_counts, Deployment};
use crate::{fast_mode, ExperimentReport, Table};

/// Sweeps limits below the paper's capping threshold with and without the
/// postponing extension.
#[must_use]
pub fn run() -> ExperimentReport {
    let counts = paper_counts();
    let limits: Vec<f64> = if fast_mode() {
        vec![2.2, 2.1]
    } else {
        vec![2.25, 2.2, 2.15, 2.1, 2.05]
    };

    let mut table = Table::new(&[
        "limit (MW)",
        "IT load (MW)",
        "capping w/o postpone (kW)",
        "capping with postpone (kW)",
        "racks deferred",
        "P1 met (postpone)",
    ]);
    for &limit_mw in &limits {
        let base = msb_scenario(
            counts,
            limit_mw,
            DischargeLevel::Medium,
            Deployment::PriorityAware,
            None,
            0xE071,
        );
        let without = base.clone().build().run();
        let with = base.allow_postponing().build().run();
        let scale = 316.0 / with.rack_outcomes.len().max(1) as f64;
        let deferred = with
            .rack_outcomes
            .iter()
            .filter(|o| o.charge_duration.is_none() || !o.sla_met)
            .count();
        table.row(&[
            format!("{limit_mw:.2}"),
            format!("{:.3}", with.it_load_before_ot.as_megawatts() * scale),
            format!("{:.0}", without.max_capped_power.as_kilowatts() * scale),
            format!("{:.0}", with.max_capped_power.as_kilowatts() * scale),
            format!("~{deferred}"),
            format!(
                "{}/{}",
                with.sla_summary(Priority::P1).met,
                with.sla_summary(Priority::P1).total
            ),
        ]);
    }

    let notes = "without postponing, server capping engages once available power falls below \
                 the 316-rack × 1 A hardware floor (≈118 kW, i.e. limits under ≈2.2 MW); with \
                 postponing the controller defers low-priority racks instead, keeping servers \
                 uncapped at limits right down to the raw IT load (below that — e.g. the \
                 2.10 MW row, where IT alone exceeds the limit — capping is unavoidable by \
                 any charging policy). The cost is redundancy: \
                 deferred racks miss their charging-time SLA (a deliberately relaxed AOR, as \
                 the paper's future-work note anticipates)."
        .to_owned();

    ExperimentReport {
        id: "ext1",
        title: "Extension: charge postponing vs server capping under extreme limits",
        sections: vec![table.render(), notes],
    }
}
