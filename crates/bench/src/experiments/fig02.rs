//! Fig 2 (Case study I): a sub-second regional utility blip makes every
//! affected rack's batteries recharge at once — a multi-megawatt spike.

use recharge_battery::ChargePolicy;
use recharge_dynamo::Strategy;
use recharge_sim::Scenario;
use recharge_units::{Seconds, Watts};

use crate::{fast_mode, ExperimentReport, Table};

/// Runs the regional case study: the affected racks (three data centers,
/// ≈31 MW of the region's 61.6 MW) ride a <1 s voltage sag and recharge on
/// the original 5 A charger with no coordination.
#[must_use]
pub fn run() -> ExperimentReport {
    // 31 MW of affected IT load at ≈6.33 kW per rack ⇒ ≈4,896 racks.
    let divisor = if fast_mode() { 16 } else { 1 };
    let affected_racks = 4_896 / divisor;
    let scale = 4_896.0 / affected_racks as f64;
    let counts = (
        affected_racks / 3,
        affected_racks / 3,
        affected_racks - 2 * (affected_racks / 3),
    );

    // Substitution: the sag was sub-second, but the observed 25-minute spike
    // decay implies the BBU fleet recharged far more energy than a 1-second
    // discharge (real chargers run a full top-off/absorption cycle after any
    // event). We model the event at 25% DOD — the shallowest lab curve of
    // Fig 4, and the smallest DOD at which the original charger's full 5 A CC
    // engages in the calibrated equivalent-circuit battery.
    let metrics = Scenario::paper_msb(0xF02)
        .priority_counts(counts.0, counts.1, counts.2)
        .power_limit(Watts::from_megawatts(100.0)) // regional: no single breaker binds
        .strategy(Strategy::Uncoordinated)
        .charge_policy(ChargePolicy::Original)
        .discharge(recharge_sim::DischargeLevel::Custom(0.25))
        .tick(Seconds::new(1.0))
        .build()
        .run();

    let affected_load = metrics.it_load_before_ot * scale;
    let unaffected_load = Watts::from_megawatts(61.6) - affected_load;
    let spike = metrics.spike_magnitude() * scale;
    let regional_before = affected_load + unaffected_load;
    let pct = spike / regional_before * 100.0;

    // Spike duration: until recharge power decays below 10% of its peak.
    let peak_recharge = metrics.max_recharge_power;
    let duration = metrics
        .series
        .iter()
        .filter(|p| p.recharge_power > peak_recharge * 0.1)
        .count() as f64
        * 5.0
        / 60.0;

    let mut table = Table::new(&["quantity", "paper", "measured"]);
    table.row(&[
        "regional load before blip",
        "61.6 MW",
        &format!("{:.1} MW", regional_before.as_megawatts()),
    ]);
    table.row(&[
        "recharge power spike",
        "+9.3 MW",
        &format!("+{:.1} MW", spike.as_megawatts()),
    ]);
    table.row(&["spike as % of load", "≈15%", &format!("≈{pct:.0}%")]);
    table.row(&["spike duration", "≈25 min", &format!("≈{duration:.0} min")]);

    let notes = format!(
        "affected fleet: {affected_racks} simulated racks (scaled ×{scale:.0}); every BBU \
         starts its charger at the full 5 A because the original charger ignores DOD.\n\
         substitution: the event is modelled at 25% DOD (Fig 4's shallowest lab curve) because \
         the equivalent-circuit battery has no absorption tail at sub-1% DOD, while the real \
         fleet's post-sag recharge clearly did (25-minute decay). See EXPERIMENTS.md."
    );

    ExperimentReport {
        id: "fig2",
        title: "Case study I: regional utility blip causes a 9.3 MW recharge spike",
        sections: vec![table.render(), notes],
    }
}
