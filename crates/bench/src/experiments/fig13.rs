//! Fig 13: MSB power under the original charger, the variable charger, and
//! priority-aware charging, across power limits and battery-discharge levels.
//!
//! Table III (maximum server power capping for the same six cases) is derived
//! from the same runs; see [`results`] and the `tab3` module.

use recharge_sim::{DischargeLevel, RunMetrics};

use crate::experiments::common::{msb_scenario, paper_counts, Deployment};
use crate::{ExperimentReport, Table};

/// One of the six Fig 13 cases under one deployment.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Case letter, `(a)` through `(f)`.
    pub case: &'static str,
    /// Full-scale breaker limit in MW.
    pub limit_mw: f64,
    /// Battery-discharge level.
    pub discharge: DischargeLevel,
    /// Which deployment produced the metrics.
    pub deployment: Deployment,
    /// The run's measured metrics.
    pub metrics: RunMetrics,
}

/// The six published cases: (a,b) low, (c,d) medium, (e,f) high discharge,
/// each at the 2.5 MW actual limit and a constrained 2.3 MW limit.
#[must_use]
pub fn cases() -> [(&'static str, f64, DischargeLevel); 6] {
    [
        ("(a)", 2.5, DischargeLevel::Low),
        ("(b)", 2.3, DischargeLevel::Low),
        ("(c)", 2.5, DischargeLevel::Medium),
        ("(d)", 2.3, DischargeLevel::Medium),
        ("(e)", 2.5, DischargeLevel::High),
        ("(f)", 2.3, DischargeLevel::High),
    ]
}

/// Runs all six cases under all three deployments (18 simulations).
#[must_use]
pub fn results() -> Vec<CaseResult> {
    let counts = paper_counts();
    let mut out = Vec::new();
    for (case, limit_mw, discharge) in cases() {
        for deployment in Deployment::ALL {
            let metrics = msb_scenario(counts, limit_mw, discharge, deployment, None, 0xF13)
                .build()
                .run();
            out.push(CaseResult {
                case,
                limit_mw,
                discharge,
                deployment,
                metrics,
            });
        }
    }
    out
}

/// Renders the Fig 13 report from fresh runs.
#[must_use]
pub fn run() -> ExperimentReport {
    render(&results())
}

/// Renders the report from precomputed results (shared with `tab3`).
#[must_use]
pub fn render(results: &[CaseResult]) -> ExperimentReport {
    let mut table = Table::new(&[
        "case",
        "limit (MW)",
        "discharge",
        "deployment",
        "IT before OT (MW)",
        "peak draw (MW)",
        "peak recharge (kW)",
        "over limit",
        "max capping (kW)",
    ]);
    for r in results {
        let scale = 316.0 / r.metrics.rack_outcomes.len().max(1) as f64;
        table.row(&[
            r.case.to_owned(),
            format!("{:.1}", r.limit_mw),
            format!("{:?}", r.discharge),
            r.deployment.label().to_owned(),
            format!("{:.3}", r.metrics.it_load_before_ot.as_megawatts() * scale),
            format!("{:.3}", r.metrics.max_total_draw.as_megawatts() * scale),
            format!("{:.0}", r.metrics.max_recharge_power.as_kilowatts() * scale),
            if r.metrics.max_total_draw > r.metrics.power_limit {
                "YES"
            } else {
                "no"
            }
            .to_owned(),
            format!("{:.0}", r.metrics.max_capped_power.as_kilowatts() * scale),
        ]);
    }

    let aware_capping: f64 = results
        .iter()
        .filter(|r| r.deployment == Deployment::PriorityAware)
        .map(|r| r.metrics.max_capped_power.as_kilowatts())
        .sum();
    let summary = format!(
        "paper shape: the original charger overloads the MSB in every case; the variable\n\
         charger cuts the spike ~60% but still overloads at the 2.3 MW limit; priority-aware\n\
         charging never exceeds the limit and needs zero capping in all six cases.\n\
         measured: priority-aware total capping across all cases = {aware_capping:.1} kW\n\
         (values are scaled to the full 316-rack fleet when running in fast mode)"
    );

    ExperimentReport {
        id: "fig13",
        title: "MSB power: original vs variable vs priority-aware across limits and discharge",
        sections: vec![table.render(), summary],
    }
}
