//! Fig 11: fine-grained recharge power of one rack being overridden from its
//! automatic 2 A to the 1 A SLA current by the leaf controller.

use recharge_dynamo::{
    AgentBus, Controller, ControllerConfig, InMemoryBus, SimRackAgent, Strategy,
};
use recharge_units::{DeviceId, Priority, RackId, Seconds, SimTime, Watts};

use crate::{ExperimentReport, Table};

/// Runs the single-rack override timeline at one-second resolution.
#[must_use]
pub fn run() -> ExperimentReport {
    // A P2 rack at low DOD: Fig 9(b) assigns 1 A, below the variable
    // charger's automatic 2 A — exactly the override the paper shows.
    let rack = RackId::new(0);
    let agent = SimRackAgent::builder(rack, Priority::P2)
        .offered_load(Watts::from_kilowatts(6.0))
        .build();
    let mut bus = InMemoryBus::new(vec![agent]);
    let mut controller = Controller::new(
        ControllerConfig::new(DeviceId::new(0), Watts::from_kilowatts(190.0)),
        Strategy::PriorityAware,
    );

    let mut table = Table::new(&["t (s)", "event", "BBU recharge power (W)"]);
    let mut series: Vec<(u32, f64)> = Vec::new();
    // The open transition starts at t=35 s, as in the paper's plot. The
    // controller only engages once it observes the first recharge power —
    // mirroring the production sequence where the rack starts at the variable
    // charger's automatic 2 A before the override lands (so no pre-planning
    // here; contrast with fig10).
    // Production controllers poll on a multi-second cadence; model a 10 s
    // detection latency between the first recharge power and the override.
    let mut first_recharge_at: Option<u32> = None;
    for s in 0..240u32 {
        let in_ot = (35..95).contains(&s);
        if let Some(a) = bus.agent_mut(rack) {
            a.set_input_power(!in_ot);
            a.step(Seconds::new(1.0));
        }
        let reading = bus.read(rack).expect("agent reachable");
        if reading.recharge_power > Watts::ZERO && first_recharge_at.is_none() {
            first_recharge_at = Some(s);
        }
        if first_recharge_at.is_some_and(|f| s >= f + 10) {
            controller.tick(SimTime::from_secs(f64::from(s)), &mut bus);
        }
        let power = bus.read(rack).expect("agent reachable").recharge_power;
        series.push((s, power.as_watts()));
    }

    // Annotate the interesting seconds.
    let first_charge = series.iter().find(|(_, p)| *p > 0.0).map_or(0, |&(s, _)| s);
    let final_power = series.last().map_or(0.0, |&(_, p)| p);
    let settled = series
        .iter()
        .find(|&&(s, p)| s > first_charge && (p - final_power).abs() <= final_power * 0.05)
        .map_or(0, |&(s, _)| s);
    for &(s, p) in &series {
        let event = match s {
            35 => "open transition begins (input power lost)",
            95 => "input power restored, automatic 2 A charging",
            _ if s == first_charge => "first recharge power observed by controller",
            _ if s == settled => "override to 1 A settled",
            _ if s % 30 == 0 => "",
            _ => continue,
        };
        table.row(&[format!("{s}"), event.to_owned(), format!("{p:.0}")]);
    }

    let notes = format!(
        "paper: the controller detects the first BBU recharge power, computes the SLA current, \
         and the power settles to the 1 A override ≈20 s after the command.\n\
         measured: first recharge power at t={first_charge} s; settled at the ≈{final_power:.0} W \
         (1 A) level by t={settled} s — one control interval in this simulator, versus ≈20 s of \
         hardware settling in production."
    );

    ExperimentReport {
        id: "fig11",
        title: "Recharge power of one rack under a leaf-controller current override",
        sections: vec![table.render(), notes],
    }
}
