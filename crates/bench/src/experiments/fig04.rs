//! Fig 4: recharge power versus time for different depths of discharge.

use recharge_battery::{BbuPack, BbuParams};
use recharge_units::{Amperes, Dod, Seconds, Watts};

use crate::{ExperimentReport, Table};

/// Runs the Fig 4 lab experiment: the original 5 A charger from 25/50/75/100%
/// DOD, reporting the power profile and the two published observations.
#[must_use]
pub fn run() -> ExperimentReport {
    let dods = [0.25, 0.5, 0.75, 1.0];
    let dt = Seconds::new(1.0);

    // Sample each profile at 5-minute marks.
    let mut profiles: Vec<Vec<f64>> = Vec::new();
    let mut initial_powers = Vec::new();
    let mut totals = Vec::new();
    for &dod in &dods {
        let mut pack = BbuPack::discharged(BbuParams::production(), Dod::new(dod));
        let mut series = Vec::new();
        let mut elapsed = Seconds::ZERO;
        let mut initial = None;
        while !pack.is_fully_charged() && elapsed < Seconds::from_hours(2.0) {
            let step = pack.charge_step(Amperes::new(5.0), dt);
            if initial.is_none() && step.wall_power > Watts::ZERO {
                initial = Some(step.wall_power.as_watts());
            }
            if (elapsed.as_secs() as u64).is_multiple_of(300) {
                series.push(step.wall_power.as_watts());
            }
            elapsed += dt;
        }
        profiles.push(series);
        initial_powers.push(initial.unwrap_or(0.0));
        totals.push(elapsed.as_minutes());
    }

    let mut table = Table::new(&[
        "t (min)",
        "25% DOD (W)",
        "50% DOD (W)",
        "75% DOD (W)",
        "100% DOD (W)",
    ]);
    let longest = profiles.iter().map(Vec::len).max().unwrap_or(0);
    for i in 0..longest {
        let mut cells = vec![format!("{}", i * 5)];
        for profile in &profiles {
            cells.push(
                profile
                    .get(i)
                    .map_or_else(|| "-".to_owned(), |p| format!("{p:.0}")),
            );
        }
        table.row(&cells);
    }

    let spread = initial_powers.iter().cloned().fold(f64::MIN, f64::max)
        - initial_powers.iter().cloned().fold(f64::MAX, f64::min);
    let summary = format!(
        "initial power per DOD: {:?} W — spread {:.0} W (paper: ~260 W, independent of DOD)\n\
         total charge time per DOD: {:?} min (paper: time shrinks with DOD via the CC phase)",
        initial_powers.iter().map(|p| p.round()).collect::<Vec<_>>(),
        spread,
        totals.iter().map(|t| t.round()).collect::<Vec<_>>(),
    );

    ExperimentReport {
        id: "fig4",
        title: "Recharge power vs time by depth of discharge (5 A charger)",
        sections: vec![table.render(), summary],
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn deeper_discharge_charges_longer() {
        let r = super::run();
        assert!(r.render().contains("initial power per DOD"));
    }
}
