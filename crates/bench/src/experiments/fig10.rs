//! Fig 10 (prototype): a leaf controller coordinates a 17-rack row
//! (9 P1 + 5 P2 + 3 P3) after an open transition.
//!
//! Two variants are run: the paper's literal 5-second transition (<5% DOD),
//! where the coordination *semantics* (per-priority overrides and ordering)
//! are reproduced, and a 60-second transition (≈20% DOD) where the commanded
//! currents also bind physically, reproducing the ≈700 W / ≈350 W per-rack
//! plateaus the paper plots. The split exists because the equivalent-circuit
//! battery has no absorption tail at very low DOD (see EXPERIMENTS.md).

use std::collections::HashMap;

use recharge_dynamo::{
    AgentBus, Controller, ControllerConfig, InMemoryBus, SimRackAgent, Strategy,
};
use recharge_units::{Amperes, DeviceId, Priority, RackId, Seconds, SimTime, Watts};

use crate::{ExperimentReport, Table};

struct RowOutcome {
    commanded: HashMap<RackId, Amperes>,
    plateau: HashMap<RackId, Watts>,
    completion: HashMap<RackId, f64>,
    priorities: HashMap<RackId, Priority>,
}

/// Simulates the 17-rack row for one open-transition length.
fn run_row(ot_secs: f64) -> RowOutcome {
    let mut agents = Vec::new();
    let mut priorities = HashMap::new();
    let mut id = 0u32;
    for (priority, count) in [(Priority::P1, 9), (Priority::P2, 5), (Priority::P3, 3)] {
        for _ in 0..count {
            let rack = RackId::new(id);
            priorities.insert(rack, priority);
            agents.push(
                SimRackAgent::builder(rack, priority)
                    .offered_load(Watts::from_kilowatts(6.0))
                    .build(),
            );
            id += 1;
        }
    }
    let mut bus = InMemoryBus::new(agents);
    let mut controller = Controller::new(
        ControllerConfig::new(DeviceId::new(0), Watts::from_kilowatts(190.0)),
        Strategy::PriorityAware,
    );

    for a in bus.agents_mut() {
        a.set_input_power(false);
    }
    for a in bus.agents_mut() {
        a.step(Seconds::new(ot_secs));
    }
    controller.tick(SimTime::ZERO, &mut bus); // pre-plan while still dark
    for a in bus.agents_mut() {
        a.set_input_power(true);
    }

    let mut plateau = HashMap::new();
    let mut commanded = HashMap::new();
    let mut completion: HashMap<RackId, f64> = HashMap::new();
    for s in 1..7_200u32 {
        for a in bus.agents_mut() {
            a.step(Seconds::new(1.0));
        }
        controller.tick(SimTime::from_secs(f64::from(s)), &mut bus);
        if s == 10 {
            commanded = controller.commanded_currents();
        }
        if s == 60 {
            for rack in bus.racks() {
                plateau.insert(
                    rack,
                    bus.read(rack).expect("agent reachable").recharge_power,
                );
            }
        }
        for rack in bus.racks() {
            let reading = bus.read(rack).expect("agent reachable");
            if !reading.is_charging() && !completion.contains_key(&rack) && s > 1 {
                completion.insert(rack, f64::from(s) / 60.0);
            }
        }
        if completion.len() == bus.racks().len() && s > 60 {
            break;
        }
    }
    RowOutcome {
        commanded,
        plateau,
        completion,
        priorities,
    }
}

fn render_variant(outcome: &RowOutcome) -> String {
    let mut table = Table::new(&[
        "priority",
        "racks",
        "override current (A)",
        "power/rack at t+1min (W)",
        "slowest completion (min)",
    ]);
    for priority in Priority::ALL {
        let racks: Vec<RackId> = outcome
            .priorities
            .iter()
            .filter(|(_, &p)| p == priority)
            .map(|(&r, _)| r)
            .collect();
        let mean_current: f64 = racks
            .iter()
            .filter_map(|r| outcome.commanded.get(r))
            .map(|c| c.as_amps())
            .sum::<f64>()
            / racks.len() as f64;
        let mean_power: f64 = racks
            .iter()
            .filter_map(|r| outcome.plateau.get(r))
            .map(|w| w.as_watts())
            .sum::<f64>()
            / racks.len() as f64;
        let slowest: f64 = racks
            .iter()
            .filter_map(|r| outcome.completion.get(r))
            .fold(0.0f64, |a, &b| a.max(b));
        table.row(&[
            priority.to_string(),
            format!("{}", racks.len()),
            format!("{mean_current:.1}"),
            format!("{mean_power:.0}"),
            format!("{slowest:.0}"),
        ]);
    }
    table.render()
}

/// Runs both prototype variants.
#[must_use]
pub fn run() -> ExperimentReport {
    let literal = run_row(5.0);
    let deep = run_row(60.0);

    let mut sections = vec![
        format!(
            "paper's literal 5 s transition (<5% DOD):\n{}",
            render_variant(&literal)
        ),
        format!(
            "60 s transition (≈20% DOD) where commanded currents bind:\n{}",
            render_variant(&deep)
        ),
    ];
    sections.push(
        "paper: P1 racks overridden to 2 A (≈700 W each, done ≈30 min); P2/P3 relaxed to 1 A \
         (≈350 W each, done within the hour). Both variants reproduce the override split \
         (P1 → 2 A, P2/P3 → 1 A) and the completion ordering; the deep variant also reproduces \
         the per-rack power plateaus. Absolute completion times are compressed at low DOD \
         (documented deviation, EXPERIMENTS.md)."
            .to_owned(),
    );

    ExperimentReport {
        id: "fig10",
        title: "Prototype: leaf controller coordinating a 17-rack row (9 P1 + 5 P2 + 3 P3)",
        sections,
    }
}
