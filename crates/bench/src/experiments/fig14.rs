//! Fig 14: racks meeting their charging-time SLA versus MSB power limit,
//! priority-aware versus the global baseline, at medium and high discharge.

use recharge_dynamo::Strategy;
use recharge_sim::DischargeLevel;
use recharge_units::Priority;

use crate::experiments::common::{msb_scenario, paper_counts, Deployment};
use crate::{fast_mode, ExperimentReport, Table};

/// The swept full-scale limits: 2.6 MW down to 2.2 MW.
#[must_use]
pub fn limits_mw() -> Vec<f64> {
    let step = if fast_mode() { 0.1 } else { 0.05 };
    let mut v = Vec::new();
    let mut limit: f64 = 2.6;
    while limit > 2.2 - 1e-9 {
        v.push((limit * 100.0).round() / 100.0);
        limit -= step;
    }
    v
}

/// Runs one sweep of SLA attainment for a strategy at a discharge level over
/// the given counts, returning `(limit, met_p1, met_p2, met_p3)` rows.
#[must_use]
pub fn sweep(
    counts: (usize, usize, usize),
    strategy: Strategy,
    discharge: DischargeLevel,
    seed: u64,
) -> Vec<(f64, usize, usize, usize)> {
    limits_mw()
        .into_iter()
        .map(|limit_mw| {
            let metrics = msb_scenario(
                counts,
                limit_mw,
                discharge,
                Deployment::PriorityAware,
                Some(strategy),
                seed,
            )
            .build()
            .run();
            (
                limit_mw,
                metrics.sla_summary(Priority::P1).met,
                metrics.sla_summary(Priority::P2).met,
                metrics.sla_summary(Priority::P3).met,
            )
        })
        .collect()
}

/// Renders one sweep as a table section.
pub(crate) fn render_sweep(
    label: &str,
    counts: (usize, usize, usize),
    rows: &[(f64, usize, usize, usize)],
) -> String {
    let mut table = Table::new(&["limit (MW)", "P1 met", "P2 met", "P3 met", "total"]);
    for &(limit, p1, p2, p3) in rows {
        table.row(&[
            format!("{limit:.2}"),
            format!("{p1}/{}", counts.0),
            format!("{p2}/{}", counts.1),
            format!("{p3}/{}", counts.2),
            format!("{}", p1 + p2 + p3),
        ]);
    }
    format!("{label}\n{}", table.render())
}

/// Runs the Fig 14 comparison (both discharge levels, both algorithms).
#[must_use]
pub fn run() -> ExperimentReport {
    let counts = paper_counts();
    let mut sections = Vec::new();
    for (dl, name) in [
        (DischargeLevel::Medium, "medium"),
        (DischargeLevel::High, "high"),
    ] {
        let aware = sweep(counts, Strategy::PriorityAware, dl, 0xF14);
        let global = sweep(counts, Strategy::Global, dl, 0xF14);
        sections.push(render_sweep(
            &format!("priority-aware charging, {name} discharge:"),
            counts,
            &aware,
        ));
        sections.push(render_sweep(
            &format!("global charging (baseline), {name} discharge:"),
            counts,
            &global,
        ));

        // Headline comparison at the tightest limit.
        let last_aware = aware.last().copied().unwrap_or_default();
        let last_global = global.last().copied().unwrap_or_default();
        sections.push(format!(
            "at the {:.2} MW limit ({name} discharge): priority-aware protects {} P1 racks, \
             global protects {} — the paper's shape (P1 penalized first under global, last \
             under priority-aware).",
            last_aware.0, last_aware.1, last_global.1
        ));
    }
    sections.push(
        "paper shape: as the limit shrinks, priority-aware sacrifices P3 first, then P2, and \
         satisfies P1 as long as possible; the global baseline starves P1 first because its \
         uniform rate is below P1's stricter SLA requirement."
            .to_owned(),
    );

    ExperimentReport {
        id: "fig14",
        title: "Racks meeting the charging-time SLA vs power limit (medium/high discharge)",
        sections,
    }
}
