//! One module per reproduced table/figure (see `DESIGN.md` §4 for the
//! experiment index).

pub mod abl1;
pub mod abl2;
pub mod common;
pub mod ext1;
pub mod ext2;
pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig09a;
pub mod fig09b;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod tab1;
pub mod tab2;
pub mod tab3;
