//! Ablation 1: the per-priority current floors of the Fig 9(b) policy.
//!
//! The deployed policy keeps P1 racks at ≥2 A even when interpolation says
//! 1 A would meet the 30-minute SLA (the §V-A prototype behaviour). This
//! ablation quantifies what the floor buys: how much earlier P1 racks get
//! their redundancy back at low DOD.

use recharge_battery::{BbuPack, BbuParams, ChargeTimeTable};
use recharge_core::{SlaCurrentPolicy, SlaTable};
use recharge_units::{Amperes, Dod, Priority, Seconds};

use crate::{ExperimentReport, Table};

/// Compares the production floors (P1 ≥ 2 A) against a floor-less policy.
#[must_use]
pub fn run() -> ExperimentReport {
    let with_floor = SlaCurrentPolicy::production();
    let without_floor =
        SlaCurrentPolicy::new(ChargeTimeTable::production().clone(), SlaTable::table2())
            .with_floors([Amperes::MIN_CHARGE; 3]);

    let mut table = Table::new(&[
        "DOD",
        "P1 current (floored)",
        "P1 current (no floor)",
        "P1 charge time floored (min)",
        "P1 charge time no floor (min)",
        "redundancy regained earlier by",
    ]);
    for pct in [2.0, 5.0, 10.0, 20.0, 30.0] {
        let dod = Dod::from_percent(pct);
        let floored = with_floor.sla_current(Priority::P1, dod);
        let free = without_floor.sla_current(Priority::P1, dod);
        let time = |current: Amperes| {
            let mut pack = BbuPack::discharged(BbuParams::production(), dod);
            pack.charge_to_full(current, Seconds::new(1.0), 100_000)
                .expect("charge converges")
                .as_minutes()
        };
        let t_floored = time(floored);
        let t_free = time(free);
        table.row(&[
            format!("{pct:.0}%"),
            format!("{:.2} A", floored.as_amps()),
            format!("{:.2} A", free.as_amps()),
            format!("{t_floored:.1}"),
            format!("{t_free:.1}"),
            format!("{:.1} min", t_free - t_floored),
        ]);
    }

    let notes = "the 2 A floor buys P1 racks their redundancy back minutes earlier at low DOD \
                 for a modest extra power draw (≈0.37 kW per floored rack); this is why the \
                 prototype (Fig 10) assigns 2 A to P1 even at <5% DOD where 1 A would \
                 technically meet the 30-minute budget."
        .to_owned();

    ExperimentReport {
        id: "abl1",
        title: "Ablation: per-priority current floors in the SLA policy",
        sections: vec![table.render(), notes],
    }
}
