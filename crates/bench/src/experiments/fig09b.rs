//! Fig 9(b): charging current required to satisfy the SLA per rack priority.

use recharge_core::SlaCurrentPolicy;
use recharge_units::{Dod, Priority};

use crate::{ExperimentReport, Table};

/// Regenerates the Fig 9(b) SLA-current curves from the production policy.
#[must_use]
pub fn run() -> ExperimentReport {
    let policy = SlaCurrentPolicy::production();
    let mut out = Table::new(&[
        "DOD",
        "P1 / 30 min (A)",
        "P2 / 60 min (A)",
        "P3 / 90 min (A)",
    ]);
    for pct in (0..=100).step_by(10) {
        let dod = Dod::from_percent(f64::from(pct));
        let mut cells = vec![format!("{pct}%")];
        for priority in Priority::ALL {
            cells.push(format!(
                "{:.2}",
                policy.sla_current(priority, dod).as_amps()
            ));
        }
        out.row(&cells);
    }

    let summary = format!(
        "floors: P1 ≥ {} (the variable charger's automatic minimum), P2/P3 ≥ {} (hardware floor);\n\
         ceiling 5 A — a P1 rack above ~{:.0}% DOD cannot meet 30 min even at 5 A and saturates.\n\
         paper prototype (Fig 10): at <5% DOD, P1 → 2 A, P2/P3 → 1 A — reproduced at the 0% row.",
        policy.floor(Priority::P1),
        policy.floor(Priority::P3),
        saturation_dod(&policy) * 100.0,
    );

    ExperimentReport {
        id: "fig9b",
        title: "SLA charging current vs depth of discharge per rack priority",
        sections: vec![out.render(), summary],
    }
}

/// The lowest DOD at which P1's 30-minute SLA becomes unattainable at 5 A.
fn saturation_dod(policy: &SlaCurrentPolicy) -> f64 {
    for pct in 0..=100 {
        let dod = Dod::from_percent(f64::from(pct));
        if !policy.meets_sla(Priority::P1, dod, recharge_units::Amperes::MAX_CHARGE) {
            return dod.value();
        }
    }
    1.0
}

#[cfg(test)]
mod tests {
    #[test]
    fn p1_needs_at_least_as_much_current() {
        let text = super::run().render();
        assert!(text.contains("P1 / 30 min"));
        assert!(text.contains("floors"));
    }
}
