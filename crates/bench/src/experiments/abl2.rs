//! Ablation 2: the *lowest-discharge-first* ordering inside a priority class.
//!
//! Algorithm 1 sorts same-priority racks by ascending DOD, which "maximizes
//! the number of racks that meet the SLA" (§IV-C) because cheap upgrades are
//! packed first. This ablation replaces that order with highest-DOD-first and
//! with rack-id order, and counts satisfied racks across budgets.

use recharge_core::{
    assign_priority_aware, ChargeAssignment, RackChargeState, RechargePowerModel, SlaCurrentPolicy,
};
use recharge_units::{Amperes, Dod, Priority, RackId, Watts};

use crate::{ExperimentReport, Table};

/// How the within-priority order is chosen in this ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Order {
    LowestDodFirst,
    HighestDodFirst,
    ByRackId,
}

/// Algorithm 1 with a configurable within-priority order (the production
/// implementation in `recharge-core` is the `LowestDodFirst` case; this local
/// variant exists only to ablate the ordering).
fn assign_with_order(
    racks: &[RackChargeState],
    available: Watts,
    policy: &SlaCurrentPolicy,
    model: &RechargePowerModel,
    order: Order,
) -> Vec<ChargeAssignment> {
    if order == Order::LowestDodFirst {
        return assign_priority_aware(racks, available, policy, model).assignments;
    }
    let mut assignments: Vec<ChargeAssignment> = racks
        .iter()
        .map(|r| ChargeAssignment {
            rack: r.rack,
            priority: r.priority,
            dod: r.dod,
            current: Amperes::MIN_CHARGE,
            sla_met: false,
        })
        .collect();
    let mut idx: Vec<usize> = (0..racks.len()).collect();
    idx.sort_by(|&a, &b| {
        racks[a]
            .priority
            .cmp(&racks[b].priority)
            .then_with(|| match order {
                Order::HighestDodFirst => racks[b].dod.value().total_cmp(&racks[a].dod.value()),
                Order::ByRackId => racks[a].rack.cmp(&racks[b].rack),
                Order::LowestDodFirst => unreachable!("handled above"),
            })
    });
    let mut remaining = available - model.rack_power(Amperes::MIN_CHARGE) * racks.len() as f64;
    for &i in &idx {
        let sla_current = policy.sla_current(racks[i].priority, racks[i].dod);
        let upgrade = model.rack_power(sla_current) - model.rack_power(Amperes::MIN_CHARGE);
        if upgrade <= remaining {
            remaining -= upgrade;
            assignments[i].current = sla_current;
        } else {
            break;
        }
    }
    for a in &mut assignments {
        a.sla_met = policy.meets_sla(a.priority, a.dod, a.current);
    }
    assignments
}

/// Runs the ordering ablation over a 200-rack single-priority fleet with a
/// spread of DODs (the Fig 15 all-P1 setting, where packing matters most).
#[must_use]
pub fn run() -> ExperimentReport {
    let policy = SlaCurrentPolicy::production();
    let model = RechargePowerModel::production();
    let racks: Vec<RackChargeState> = (0..200u32)
        .map(|i| RackChargeState {
            rack: RackId::new(i),
            priority: Priority::P1,
            dod: Dod::new(0.35 + 0.4 * f64::from(i % 101) / 101.0),
        })
        .collect();

    let mut table = Table::new(&[
        "budget (kW)",
        "lowest-DOD-first met",
        "highest-DOD-first met",
        "rack-id order met",
    ]);
    let mut advantage = Vec::new();
    for budget_kw in [100.0, 150.0, 200.0, 250.0, 300.0] {
        let budget = Watts::from_kilowatts(budget_kw);
        let count = |order| {
            assign_with_order(&racks, budget, &policy, &model, order)
                .iter()
                .filter(|a| a.sla_met)
                .count()
        };
        let best = count(Order::LowestDodFirst);
        let worst = count(Order::HighestDodFirst);
        let neutral = count(Order::ByRackId);
        advantage.push(best as f64 / worst.max(1) as f64);
        table.row(&[
            format!("{budget_kw:.0}"),
            format!("{best}"),
            format!("{worst}"),
            format!("{neutral}"),
        ]);
    }

    let max_adv = advantage.iter().cloned().fold(0.0f64, f64::max);
    let notes = format!(
        "lowest-DOD-first packs up to {max_adv:.1}× more racks into the same budget than \
         highest-DOD-first — the mechanism behind the paper's Fig 15 all-P1 result (≈3× over \
         the priority-oblivious baseline)."
    );

    ExperimentReport {
        id: "abl2",
        title: "Ablation: within-priority ordering of Algorithm 1",
        sections: vec![table.render(), notes],
    }
}
