//! Table II: charging-time SLA per rack priority, validated against the
//! Monte-Carlo AOR model.

use recharge_core::SlaTable;
use recharge_reliability::{table1, AorSimulation};
use recharge_units::Priority;

use crate::{fast_mode, ExperimentReport, Table};

/// Prints Table II and cross-checks each AOR target against the simulated
/// AOR at that priority's charging-time SLA.
#[must_use]
pub fn run() -> ExperimentReport {
    let sla = SlaTable::table2();
    let horizon = if fast_mode() { 2_000.0 } else { 20_000.0 };
    let timeline = AorSimulation::new(table1::standard_sources()).run(horizon, 0x7AB2);

    let mut out = Table::new(&[
        "priority",
        "AOR target",
        "loss of redundancy (h/yr)",
        "charging-time SLA",
        "simulated AOR at SLA",
    ]);
    for priority in Priority::ALL {
        let budget = sla.charge_time_budget(priority);
        let simulated = timeline.aor(budget);
        out.row(&[
            priority.to_string(),
            format!("{:.2}%", sla.aor_target(priority) * 100.0),
            format!("{:.2}", sla.loss_of_redundancy_hours(priority)),
            format!("{:.0} minutes", budget.as_minutes()),
            format!("{:.4}%", simulated * 100.0),
        ]);
    }

    ExperimentReport {
        id: "tab2",
        title: "Charging-time SLA for each rack priority (Table II)",
        sections: vec![
            out.render(),
            format!(
                "paper: P1 99.94% / 5.26 h/yr / 30 min; P2 99.90% / 8.76 h/yr / 60 min; \
                 P3 99.85% / 13.14 h/yr / 90 min\n\
                 (simulated column from {horizon:.0} Monte-Carlo years over Table I)"
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_three_priorities_reported() {
        std::env::set_var("RECHARGE_FAST", "1");
        let text = super::run().render();
        assert!(text.contains("P1") && text.contains("P2") && text.contains("P3"));
        assert!(text.contains("30 minutes"));
    }
}
