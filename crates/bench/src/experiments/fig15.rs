//! Fig 15: SLA attainment under different rack-priority distributions
//! (evenly distributed thirds, and all racks P1) at medium discharge.

use recharge_dynamo::Strategy;
use recharge_sim::DischargeLevel;

use crate::experiments::common::paper_counts;
use crate::experiments::fig14::{render_sweep, sweep};
use crate::ExperimentReport;

/// Runs the Fig 15 distribution study.
#[must_use]
pub fn run() -> ExperimentReport {
    let base = paper_counts();
    let total = base.0 + base.1 + base.2;
    let third = total / 3;
    let even = (third, third, total - 2 * third);
    let all_p1 = (total, 0, 0);

    let mut sections = Vec::new();
    let mut averages = Vec::new();
    for (counts, name) in [
        (even, "evenly distributed (thirds)"),
        (all_p1, "all racks P1"),
    ] {
        for (strategy, label) in [
            (Strategy::PriorityAware, "priority-aware"),
            (Strategy::Global, "global"),
        ] {
            let rows = sweep(counts, strategy, DischargeLevel::Medium, 0xF15);
            let avg_total: f64 = rows.iter().map(|r| (r.1 + r.2 + r.3) as f64).sum::<f64>()
                / rows.len().max(1) as f64;
            averages.push((name, label, avg_total));
            sections.push(render_sweep(&format!("{name}, {label}:"), counts, &rows));
        }
    }

    let all_p1_aware = averages
        .iter()
        .find(|(n, l, _)| *n == "all racks P1" && *l == "priority-aware")
        .map_or(0.0, |&(_, _, a)| a);
    let all_p1_global = averages
        .iter()
        .find(|(n, l, _)| *n == "all racks P1" && *l == "global")
        .map_or(0.0, |&(_, _, a)| a);
    let ratio = if all_p1_global > 0.0 {
        all_p1_aware / all_p1_global
    } else {
        f64::INFINITY
    };
    // The paper's 3× claim lives in the constrained region where the global
    // uniform rate falls below the P1 requirement: compare there directly.
    let aware_rows = sweep(
        all_p1,
        Strategy::PriorityAware,
        DischargeLevel::Medium,
        0xF15,
    );
    let global_rows = sweep(all_p1, Strategy::Global, DischargeLevel::Medium, 0xF15);
    let constrained: Vec<String> = aware_rows
        .iter()
        .zip(&global_rows)
        .filter(|(a, _)| a.0 <= 2.45)
        .map(|(a, g)| format!("  {:.2} MW: priority-aware {} vs global {}", a.0, a.1, g.1))
        .collect();
    sections.push(format!(
        "all-P1 average racks meeting the SLA over the sweep: priority-aware {all_p1_aware:.0}, \
         global {all_p1_global:.0} (ratio {ratio:.1}×).\n\
         constrained region (≤2.45 MW), where the paper's ≈3× gap lives:\n{}\n\
         paper: with all racks P1, priority-aware averages 208 racks, ≈3× the global baseline \
         — the lowest-discharge-first order packs the most racks into the available power.",
        constrained.join("\n")
    ));

    ExperimentReport {
        id: "fig15",
        title: "SLA attainment vs power limit under different priority distributions",
        sections,
    }
}
