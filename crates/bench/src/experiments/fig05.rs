//! Fig 5: BBU charging time versus depth of discharge for 1–5 A currents.

use recharge_battery::ChargeTimeTable;
use recharge_units::{Amperes, Dod};

use crate::{ExperimentReport, Table};

/// Regenerates the Fig 5 surface from the production charge-time table.
#[must_use]
pub fn run() -> ExperimentReport {
    let table = ChargeTimeTable::production();
    let currents = [1.0, 2.0, 3.0, 4.0, 5.0];

    let mut out = Table::new(&[
        "DOD",
        "1 A (min)",
        "2 A (min)",
        "3 A (min)",
        "4 A (min)",
        "5 A (min)",
    ]);
    for decile in (1..=10).rev() {
        let dod = Dod::new(f64::from(decile) / 10.0);
        let mut cells = vec![format!("{:.0}%", dod.as_percent())];
        for &amps in &currents {
            let t = table
                .charge_time(dod, Amperes::new(amps))
                .expect("grid covers the sampled range");
            cells.push(format!("{:.1}", t.as_minutes()));
        }
        out.row(&cells);
    }

    let anchors = format!(
        "paper anchors: T(100%, 5 A) ≈ 36 min; T(70%, 4 A) ≈ 40 min; T(<50%, 2 A) ≈ 45 min;\n\
         1 A considerably slower; curves converge at low DOD (CV-dominated).\n\
         measured:      T(100%, 5 A) = {:.1} min; T(70%, 4 A) = {:.1} min; T(50%, 2 A) = {:.1} min;\n\
         T(50%, 1 A) = {:.1} min; T(10%, 2 A) = {:.1} min vs T(10%, 5 A) = {:.1} min",
        table.charge_time(Dod::FULL, Amperes::new(5.0)).unwrap().as_minutes(),
        table.charge_time(Dod::new(0.7), Amperes::new(4.0)).unwrap().as_minutes(),
        table.charge_time(Dod::new(0.5), Amperes::new(2.0)).unwrap().as_minutes(),
        table.charge_time(Dod::new(0.5), Amperes::new(1.0)).unwrap().as_minutes(),
        table.charge_time(Dod::new(0.1), Amperes::new(2.0)).unwrap().as_minutes(),
        table.charge_time(Dod::new(0.1), Amperes::new(5.0)).unwrap().as_minutes(),
    );

    ExperimentReport {
        id: "fig5",
        title: "Charging time vs depth of discharge for 1-5 A charging currents",
        sections: vec![out.render(), anchors],
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn table_has_ten_dod_rows() {
        let r = super::run();
        let text = r.render();
        assert!(text.contains("100%"));
        assert!(text.contains("10%"));
        assert!(text.contains("paper anchors"));
    }
}
