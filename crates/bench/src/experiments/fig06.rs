//! Fig 6(b): the variable charger's CC-current selection versus DOD (Eq. 1).

use recharge_battery::{variable_current, ChargeTimeTable};
use recharge_units::Dod;

use crate::{ExperimentReport, Table};

/// Regenerates the Eq. 1 selection curve and verifies its 45-minute design
/// bound against the charge-time table.
#[must_use]
pub fn run() -> ExperimentReport {
    let table = ChargeTimeTable::production();
    let mut out = Table::new(&[
        "DOD",
        "I_C (A)",
        "resulting charge time (min)",
        "within 45 min",
    ]);
    let mut worst: f64 = 0.0;
    for pct in (0..=100).step_by(10) {
        let dod = Dod::from_percent(f64::from(pct));
        let current = variable_current(dod);
        let time = table
            .charge_time(dod, current)
            .expect("in range")
            .as_minutes();
        worst = worst.max(time);
        out.row(&[
            format!("{pct}%"),
            format!("{:.1}", current.as_amps()),
            format!("{time:.1}"),
            if time <= 45.0 {
                "yes".to_owned()
            } else {
                "NO".to_owned()
            },
        ]);
    }

    let summary = format!(
        "Eq. 1: I_C = 2 A below 50% DOD, then 2 + (DOD − 0.5) × 6 up to 5 A.\n\
         worst-case charge time under Eq. 1: {worst:.1} min (design bound: 45 min)"
    );

    ExperimentReport {
        id: "fig6",
        title: "Variable charger current selection by depth of discharge (Eq. 1)",
        sections: vec![out.render(), summary],
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn bound_holds_everywhere() {
        let text = super::run().render();
        assert!(!text.contains("NO"), "45-minute bound violated:\n{text}");
    }
}
