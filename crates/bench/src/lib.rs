//! Experiment harness regenerating every table and figure of the paper's
//! evaluation, plus shared formatting utilities.
//!
//! Each `experiments::figN` / `experiments::tabN` module produces an
//! [`ExperimentReport`] containing the same rows or series the paper reports,
//! annotated with the paper's published values where they exist. The
//! `experiments` binary dispatches on experiment id:
//!
//! ```text
//! cargo run --release -p recharge-bench --bin experiments -- fig13
//! cargo run --release -p recharge-bench --bin experiments -- all
//! ```
//!
//! Absolute numbers come from the calibrated simulator, not the authors'
//! testbed; the *shape* — who wins, by roughly what factor, where crossovers
//! fall — is what each report is asserting. `EXPERIMENTS.md` at the workspace
//! root records paper-versus-measured for every entry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
mod format;

pub use format::Table;

/// A rendered experiment: an id, a title, and preformatted text sections.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Experiment id (`fig2` … `fig15`, `tab1` … `tab3`).
    pub id: &'static str,
    /// Human-readable title mirroring the paper's caption.
    pub title: &'static str,
    /// Preformatted text sections (tables, series, commentary).
    pub sections: Vec<String>,
}

impl ExperimentReport {
    /// Renders the report as displayable text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("=== {} — {} ===\n", self.id, self.title));
        for section in &self.sections {
            out.push('\n');
            out.push_str(section);
            if !section.ends_with('\n') {
                out.push('\n');
            }
        }
        out
    }
}

/// All experiment ids, in paper order.
#[must_use]
pub fn all_ids() -> Vec<&'static str> {
    vec![
        "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig9a", "fig9b", "fig10", "fig11",
        "fig12", "fig13", "tab1", "tab2", "tab3", "fig14", "fig15", "ext1", "ext2", "abl1", "abl2",
    ]
}

/// Runs one experiment by id.
#[must_use]
pub fn run(id: &str) -> Option<ExperimentReport> {
    let report = match id {
        "fig2" => experiments::fig02::run(),
        "fig3" => experiments::fig03::run(),
        "fig4" => experiments::fig04::run(),
        "fig5" => experiments::fig05::run(),
        "fig6" => experiments::fig06::run(),
        "fig7" => experiments::fig07::run(),
        "fig9a" => experiments::fig09a::run(),
        "fig9b" => experiments::fig09b::run(),
        "fig10" => experiments::fig10::run(),
        "fig11" => experiments::fig11::run(),
        "fig12" => experiments::fig12::run(),
        "fig13" => experiments::fig13::run(),
        "fig14" => experiments::fig14::run(),
        "fig15" => experiments::fig15::run(),
        "tab1" => experiments::tab1::run(),
        "tab2" => experiments::tab2::run(),
        "tab3" => experiments::tab3::run(),
        "ext1" => experiments::ext1::run(),
        "ext2" => experiments::ext2::run(),
        "abl1" => experiments::abl1::run(),
        "abl2" => experiments::abl2::run(),
        _ => return None,
    };
    Some(report)
}

/// Whether fast mode is enabled (`RECHARGE_FAST=1`): sweeps are thinned and
/// Monte-Carlo horizons shortened so the whole suite finishes quickly.
#[must_use]
pub fn fast_mode() -> bool {
    std::env::var("RECHARGE_FAST")
        .map(|v| v == "1")
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_with_header_and_sections() {
        let r = ExperimentReport {
            id: "figX",
            title: "test",
            sections: vec!["alpha".into(), "beta\n".into()],
        };
        let text = r.render();
        assert!(text.starts_with("=== figX — test ==="));
        assert!(text.contains("alpha\n"));
        assert!(text.contains("beta\n"));
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(run("fig99").is_none());
    }

    #[test]
    fn all_ids_are_unique() {
        let ids = all_ids();
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
    }
}
