//! Criterion benches for the Monte-Carlo reliability engine.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use recharge_reliability::{table1, AorSimulation};
use recharge_units::Seconds;

fn bench_event_sampling(c: &mut Criterion) {
    let sim = AorSimulation::new(table1::standard_sources());
    c.bench_function("montecarlo_100y", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(sim.run(100.0, seed))
        });
    });
}

fn bench_aor_query(c: &mut Criterion) {
    let timeline = AorSimulation::new(table1::standard_sources()).run(5_000.0, 1);
    c.bench_function("aor_query_5000y_timeline", |b| {
        b.iter(|| black_box(timeline.aor(Seconds::from_minutes(45.0))));
    });
}

fn bench_trials(c: &mut Criterion) {
    let sim = AorSimulation::new(table1::standard_sources());
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    c.bench_function("montecarlo_trials_serial_8x50y", |b| {
        b.iter(|| black_box(sim.run_trials(50.0, 8, 17)));
    });
    c.bench_function("montecarlo_trials_parallel_8x50y", |b| {
        b.iter(|| black_box(sim.run_trials_parallel(50.0, 8, 17, threads)));
    });
}

criterion_group!(benches, bench_event_sampling, bench_aor_query, bench_trials);
criterion_main!(benches);
