//! Criterion benches for the battery physics: per-step cost and full-charge
//! integration, plus charge-time table queries.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use recharge_battery::{BbuPack, BbuParams, ChargePolicy, ChargeTimeTable, RackBatterySystem};
use recharge_units::{Amperes, Dod, Seconds, Watts};

fn bench_charge_step(c: &mut Criterion) {
    c.bench_function("bbu_pack_charge_step", |b| {
        let mut pack = BbuPack::discharged(BbuParams::production(), Dod::new(0.8));
        b.iter(|| {
            if pack.is_fully_charged() {
                pack = BbuPack::discharged(BbuParams::production(), Dod::new(0.8));
            }
            black_box(pack.charge_step(Amperes::new(3.0), Seconds::new(1.0)))
        });
    });
}

fn bench_full_charge(c: &mut Criterion) {
    c.bench_function("bbu_pack_full_charge_5a", |b| {
        b.iter(|| {
            let mut pack = BbuPack::discharged(BbuParams::production(), Dod::FULL);
            pack.charge_to_full(Amperes::new(5.0), Seconds::new(1.0), 100_000)
                .expect("charge converges")
        });
    });
}

fn bench_rack_step(c: &mut Criterion) {
    c.bench_function("rack_battery_step", |b| {
        let mut rack = RackBatterySystem::new(BbuParams::production(), ChargePolicy::Variable);
        rack.input_power_lost();
        rack.step(Watts::from_kilowatts(6.0), Seconds::new(90.0));
        rack.input_power_restored();
        b.iter(|| black_box(rack.step(Watts::from_kilowatts(6.0), Seconds::new(1.0))));
    });
}

fn bench_table_queries(c: &mut Criterion) {
    let table = ChargeTimeTable::production();
    c.bench_function("charge_time_lookup", |b| {
        b.iter(|| {
            table
                .charge_time(black_box(Dod::new(0.63)), black_box(Amperes::new(2.7)))
                .expect("in range")
        });
    });
    c.bench_function("required_current_inversion", |b| {
        b.iter(|| {
            table
                .required_current(black_box(Dod::new(0.63)), Seconds::from_minutes(45.0))
                .expect("in range")
        });
    });
}

criterion_group!(
    benches,
    bench_charge_step,
    bench_full_charge,
    bench_rack_step,
    bench_table_queries
);
criterion_main!(benches);
