//! Criterion benches for the charging-assignment algorithms: how Algorithm 1
//! and the global baseline scale with fleet size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use recharge_core::{
    assign_global, assign_priority_aware, throttle_on_overload, RackChargeState,
    RechargePowerModel, SlaCurrentPolicy,
};
use recharge_units::{Amperes, Dod, Priority, RackId, Watts};

fn fleet(n: u32) -> Vec<RackChargeState> {
    (0..n)
        .map(|i| RackChargeState {
            rack: RackId::new(i),
            priority: Priority::ALL[(i % 3) as usize],
            dod: Dod::new(0.2 + 0.6 * f64::from(i % 97) / 97.0),
        })
        .collect()
}

fn bench_assignment(c: &mut Criterion) {
    let policy = SlaCurrentPolicy::production();
    let model = RechargePowerModel::production();
    let mut group = c.benchmark_group("assignment");
    for n in [100u32, 1_000, 10_000] {
        let racks = fleet(n);
        // Roughly 80% of a mid-rate fleet demand fits: a contended budget.
        let budget = model.rack_power(Amperes::new(2.0)) * f64::from(n) * 0.8;
        group.bench_with_input(BenchmarkId::new("priority_aware", n), &racks, |b, racks| {
            b.iter(|| assign_priority_aware(black_box(racks), budget, &policy, &model));
        });
        group.bench_with_input(BenchmarkId::new("global", n), &racks, |b, racks| {
            b.iter(|| assign_global(black_box(racks), budget, &policy, &model));
        });
    }
    group.finish();
}

fn bench_throttle(c: &mut Criterion) {
    let policy = SlaCurrentPolicy::production();
    let model = RechargePowerModel::production();
    let racks = fleet(1_000);
    let budget = model.rack_power(Amperes::new(3.0)) * 1_000.0;
    let assignments = assign_priority_aware(&racks, budget, &policy, &model).assignments;
    c.bench_function("throttle_on_overload/1000", |b| {
        b.iter(|| {
            throttle_on_overload(
                black_box(&assignments),
                Watts::from_kilowatts(150.0),
                &policy,
                &model,
            )
        });
    });
}

fn bench_policy(c: &mut Criterion) {
    let policy = SlaCurrentPolicy::production();
    c.bench_function("sla_current_lookup_x100", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..100 {
                let dod = Dod::new(f64::from(i) / 100.0);
                acc += policy.sla_current(black_box(Priority::P1), dod).as_amps();
            }
            acc
        });
    });
    c.bench_function("sla_current_exact_x100", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..100 {
                let dod = Dod::new(f64::from(i) / 100.0);
                acc += policy
                    .sla_current_exact(black_box(Priority::P1), dod)
                    .as_amps();
            }
            acc
        });
    });
}

criterion_group!(benches, bench_assignment, bench_throttle, bench_policy);
criterion_main!(benches);
