//! Criterion benches for the control-plane tick over the paper's 316-rack
//! MSB fleet: steady state and mid-charge.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use recharge_dynamo::{
    Controller, ControllerConfig, InMemoryBus, SimRackAgent, Strategy, ThreadedFleet,
};
use recharge_units::{DeviceId, Priority, RackId, Seconds, SimTime, Watts};

fn msb_agents() -> Vec<SimRackAgent> {
    let mut agents = Vec::new();
    let mut id = 0u32;
    for (priority, count) in [(Priority::P1, 89), (Priority::P2, 142), (Priority::P3, 85)] {
        for _ in 0..count {
            agents.push(
                SimRackAgent::builder(RackId::new(id), priority)
                    .offered_load(Watts::from_kilowatts(6.33))
                    .build(),
            );
            id += 1;
        }
    }
    agents
}

fn msb_bus() -> InMemoryBus<SimRackAgent> {
    InMemoryBus::new(msb_agents())
}

fn bench_steady_tick(c: &mut Criterion) {
    let mut bus = msb_bus();
    let mut controller = Controller::new(
        ControllerConfig::new(DeviceId::new(0), Watts::from_megawatts(2.5)),
        Strategy::PriorityAware,
    );
    let mut t = SimTime::ZERO;
    c.bench_function("controller_tick_steady_316racks", |b| {
        b.iter(|| {
            t += Seconds::new(1.0);
            black_box(controller.tick(t, &mut bus))
        });
    });
}

fn bench_charging_tick(c: &mut Criterion) {
    let mut bus = msb_bus();
    for a in bus.agents_mut() {
        a.set_input_power(false);
    }
    for a in bus.agents_mut() {
        a.step(Seconds::new(141.0)); // ≈50% DOD
    }
    for a in bus.agents_mut() {
        a.set_input_power(true);
    }
    let mut controller = Controller::new(
        ControllerConfig::new(DeviceId::new(0), Watts::from_megawatts(2.3)),
        Strategy::PriorityAware,
    );
    let mut t = SimTime::ZERO;
    c.bench_function("controller_tick_charging_316racks", |b| {
        b.iter(|| {
            for a in bus.agents_mut() {
                a.step(Seconds::new(1.0));
            }
            t += Seconds::new(1.0);
            black_box(controller.tick(t, &mut bus))
        });
    });
}

fn bench_threaded_tick(c: &mut Criterion) {
    // Same charging workload as bench_charging_tick, but the agents live on
    // ThreadedFleet shard workers and step in parallel.
    let shards = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut agents = msb_agents();
    for a in &mut agents {
        a.set_input_power(false);
        a.step(Seconds::new(141.0)); // ≈50% DOD
        a.set_input_power(true);
    }
    let mut fleet = ThreadedFleet::spawn(agents, shards);
    let mut controller = Controller::new(
        ControllerConfig::new(DeviceId::new(0), Watts::from_megawatts(2.3)),
        Strategy::PriorityAware,
    );
    let mut t = SimTime::ZERO;
    c.bench_function("controller_tick_charging_316racks_threaded", |b| {
        b.iter(|| {
            fleet.step_all(Seconds::new(1.0), |_| Watts::from_kilowatts(6.33), true);
            t += Seconds::new(1.0);
            black_box(controller.tick(t, &mut fleet))
        });
    });
    let _ = fleet.into_agents();
}

fn bench_steady_tick_telemetry(c: &mut Criterion) {
    // bench_steady_tick with telemetry recording enabled: the delta against
    // the plain variant is the live span/counter cost per controller tick.
    // Buffers are drained afterwards so other benches see a clean slate.
    let mut bus = msb_bus();
    let mut controller = Controller::new(
        ControllerConfig::new(DeviceId::new(0), Watts::from_megawatts(2.5)),
        Strategy::PriorityAware,
    );
    let mut t = SimTime::ZERO;
    recharge_telemetry::set_enabled(true);
    c.bench_function("controller_tick_steady_316racks_telemetry", |b| {
        b.iter(|| {
            t += Seconds::new(1.0);
            black_box(controller.tick(t, &mut bus))
        });
    });
    recharge_telemetry::set_enabled(false);
    let _ = recharge_telemetry::take_records();
    recharge_telemetry::reset_metrics();
}

criterion_group!(
    benches,
    bench_steady_tick,
    bench_charging_tick,
    bench_threaded_tick,
    bench_steady_tick_telemetry
);
criterion_main!(benches);
