//! Power-oversubscription analytics (§II-B).
//!
//! A 2.5 MW MSB "should" carry ⌊2.5 MW / 12.6 kW⌋ = 198 nameplate racks, yet
//! the paper's MSB carries 316 — because statistical multiplexing keeps the
//! realized aggregate far below the sum of nameplates. These helpers quantify
//! that: realized peaks, headroom percentiles, and the safe oversubscription
//! ratio at a target exceedance probability.

use recharge_units::{Seconds, SimTime, Watts};

use crate::model::RackPowerTrace;
use crate::stats::sample_aggregate;

/// Summary of a fleet's oversubscription against a breaker limit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OversubscriptionReport {
    /// Racks in the fleet.
    pub rack_count: usize,
    /// Racks the limit would allow at nameplate power.
    pub nameplate_capacity: usize,
    /// Deployed racks ÷ nameplate capacity (the paper reports 1.47 average,
    /// up to 1.70).
    pub ratio: f64,
    /// Highest observed aggregate power.
    pub peak: Watts,
    /// Peak as a fraction of the limit.
    pub peak_utilization: f64,
    /// Fraction of samples that exceeded the limit.
    pub exceedance: f64,
}

/// Analyzes a trace window against a breaker limit with the given nameplate
/// rack rating.
///
/// # Panics
///
/// Panics if `step` is not positive, the window is empty, or `nameplate` is
/// not positive.
///
/// # Examples
///
/// ```
/// use recharge_trace::{analyze_oversubscription, SyntheticFleet};
/// use recharge_units::{Seconds, SimTime, Watts};
///
/// let fleet = SyntheticFleet::paper_msb(1);
/// let report = analyze_oversubscription(
///     &fleet,
///     Watts::from_megawatts(2.5),
///     Watts::from_kilowatts(12.6),
///     SimTime::ZERO,
///     SimTime::from_secs(86_400.0),
///     Seconds::from_minutes(10.0),
/// );
/// // 316 deployed racks vs 198 nameplate slots ≈ 1.6× oversubscribed,
/// // yet the realized peak stays under the limit.
/// assert!(report.ratio > 1.4);
/// assert_eq!(report.exceedance, 0.0);
/// ```
#[must_use]
pub fn analyze_oversubscription<T: RackPowerTrace + ?Sized>(
    trace: &T,
    limit: Watts,
    nameplate: Watts,
    start: SimTime,
    end: SimTime,
    step: Seconds,
) -> OversubscriptionReport {
    assert!(nameplate > Watts::ZERO, "nameplate rating must be positive");
    let samples = sample_aggregate(trace, start, end, step);
    assert!(
        !samples.is_empty(),
        "window must contain at least one sample"
    );

    let peak = samples
        .iter()
        .map(|p| p.power)
        .fold(Watts::ZERO, Watts::max);
    let over = samples.iter().filter(|p| p.power > limit).count();
    let nameplate_capacity = (limit / nameplate).floor() as usize;

    OversubscriptionReport {
        rack_count: trace.fleet().len(),
        nameplate_capacity,
        ratio: trace.fleet().len() as f64 / nameplate_capacity.max(1) as f64,
        peak,
        peak_utilization: peak / limit,
        exceedance: over as f64 / samples.len() as f64,
    }
}

/// The largest fleet (multiple of `fleet_unit` racks) whose aggregate stays
/// within `limit` for the whole window, found by scaling the given trace —
/// the planning question §II-B's oversubscription answers.
///
/// Returns the rack count and the implied oversubscription ratio.
///
/// # Panics
///
/// Panics if the window is empty or `nameplate` is not positive.
#[must_use]
pub fn max_safe_racks<T: RackPowerTrace + ?Sized>(
    trace: &T,
    limit: Watts,
    nameplate: Watts,
    start: SimTime,
    end: SimTime,
    step: Seconds,
) -> (usize, f64) {
    assert!(nameplate > Watts::ZERO, "nameplate rating must be positive");
    let samples = sample_aggregate(trace, start, end, step);
    assert!(
        !samples.is_empty(),
        "window must contain at least one sample"
    );
    let peak = samples
        .iter()
        .map(|p| p.power)
        .fold(Watts::ZERO, Watts::max);
    let current = trace.fleet().len();
    // The fleet scales linearly: peak-per-rack × n ≤ limit.
    let per_rack_peak = peak / current as f64;
    let safe = (limit / per_rack_peak).floor() as usize;
    let nameplate_capacity = ((limit / nameplate).floor() as usize).max(1);
    (safe, safe as f64 / nameplate_capacity as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SyntheticFleet;

    fn week() -> (SimTime, SimTime, Seconds) {
        (
            SimTime::ZERO,
            SimTime::from_secs(7.0 * 86_400.0),
            Seconds::from_minutes(30.0),
        )
    }

    #[test]
    fn paper_msb_is_oversubscribed_but_safe() {
        let fleet = SyntheticFleet::paper_msb(3);
        let (start, end, step) = week();
        let report = analyze_oversubscription(
            &fleet,
            Watts::from_megawatts(2.5),
            Watts::from_kilowatts(12.6),
            start,
            end,
            step,
        );
        assert_eq!(report.rack_count, 316);
        assert_eq!(report.nameplate_capacity, 198);
        assert!(
            (report.ratio - 1.596).abs() < 0.01,
            "ratio {}",
            report.ratio
        );
        // §II-B band: 47% average, up to 70%.
        assert!((1.4..1.75).contains(&report.ratio));
        assert_eq!(report.exceedance, 0.0);
        assert!(report.peak_utilization < 0.9);
    }

    #[test]
    fn max_safe_racks_exceeds_deployment() {
        let fleet = SyntheticFleet::paper_msb(3);
        let (start, end, step) = week();
        let (safe, ratio) = max_safe_racks(
            &fleet,
            Watts::from_megawatts(2.5),
            Watts::from_kilowatts(12.6),
            start,
            end,
            step,
        );
        assert!(safe > 316, "could deploy more: {safe}");
        assert!(ratio > 1.5);
    }

    #[test]
    fn tight_limit_reports_exceedance() {
        let fleet = SyntheticFleet::paper_msb(3);
        let (start, end, step) = week();
        let report = analyze_oversubscription(
            &fleet,
            Watts::from_megawatts(2.0),
            Watts::from_kilowatts(12.6),
            start,
            end,
            step,
        );
        assert!(report.exceedance > 0.0);
        assert!(report.peak_utilization > 1.0);
    }

    #[test]
    #[should_panic(expected = "nameplate")]
    fn zero_nameplate_panics() {
        let fleet = SyntheticFleet::row(1, 0, 0, 0);
        let (start, end, step) = week();
        let _ = analyze_oversubscription(&fleet, Watts::new(1.0), Watts::ZERO, start, end, step);
    }
}
