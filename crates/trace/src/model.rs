//! Trace abstractions: the fleet membership and the trace trait.

use serde::{Deserialize, Serialize};

use recharge_units::{Priority, RackId, SimTime, Watts};

/// One rack in a traced fleet: its identity and service priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetEntry {
    /// The rack.
    pub rack: RackId,
    /// Priority of the services on the rack.
    pub priority: Priority,
}

/// A source of per-rack IT-load power over simulated time.
///
/// Implementations must be deterministic: the same `(rack, at)` query always
/// returns the same power, so simulations are reproducible and traces need no
/// materialization.
pub trait RackPowerTrace {
    /// The racks covered by this trace, in id order.
    fn fleet(&self) -> &[FleetEntry];

    /// IT load of `rack` at instant `at`.
    ///
    /// Racks outside [`RackPowerTrace::fleet`] draw zero.
    fn rack_power(&self, rack: RackId, at: SimTime) -> Watts;

    /// Total IT load of the fleet at instant `at`.
    fn aggregate_power(&self, at: SimTime) -> Watts {
        self.fleet()
            .iter()
            .map(|e| self.rack_power(e.rack, at))
            .sum()
    }

    /// Number of racks with the given priority.
    fn count_priority(&self, priority: Priority) -> usize {
        self.fleet()
            .iter()
            .filter(|e| e.priority == priority)
            .count()
    }
}

/// The diurnal-plus-weekly shape shared by data-center load curves (§II-B:
/// "server power varies with its utilization which generally exhibit diurnal
/// and weekly cycles").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiurnalModel {
    /// Fractional amplitude of the 24-hour cycle (0.05 = ±5%).
    pub daily_amplitude: f64,
    /// Fractional amplitude of the 7-day cycle.
    pub weekly_amplitude: f64,
    /// Hour of day (0–24) at which the daily cycle peaks.
    pub peak_hour: f64,
}

impl DiurnalModel {
    /// The calibration used for Fig 12: ±5% daily swing peaking at 18:00 with
    /// a gentle ±1% weekly modulation, which yields a 1.9–2.1 MW envelope for
    /// a 316-rack / ≈2 MW fleet.
    #[must_use]
    pub fn standard() -> Self {
        DiurnalModel {
            daily_amplitude: 0.05,
            weekly_amplitude: 0.01,
            peak_hour: 18.0,
        }
    }

    /// Multiplicative load factor at instant `at` (mean 1.0 over a week).
    #[must_use]
    pub fn factor(&self, at: SimTime) -> f64 {
        let hours = at.as_secs() / 3_600.0;
        let daily = (core::f64::consts::TAU * (hours - self.peak_hour) / 24.0).cos();
        let weekly = (core::f64::consts::TAU * hours / (24.0 * 7.0)).sin();
        1.0 + self.daily_amplitude * daily + self.weekly_amplitude * weekly
    }

    /// The instant of the first daily peak at or after `from`.
    #[must_use]
    pub fn first_peak_after(&self, from: SimTime) -> SimTime {
        let hours = from.as_secs() / 3_600.0;
        let day_start = (hours / 24.0).floor() * 24.0;
        let mut peak = day_start + self.peak_hour;
        if peak < hours {
            peak += 24.0;
        }
        SimTime::from_secs(peak * 3_600.0)
    }
}

impl Default for DiurnalModel {
    fn default() -> Self {
        DiurnalModel::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recharge_units::Seconds;

    #[test]
    fn factor_peaks_at_peak_hour() {
        let m = DiurnalModel::standard();
        let peak = m.factor(SimTime::from_secs(18.0 * 3_600.0));
        let trough = m.factor(SimTime::from_secs(6.0 * 3_600.0));
        assert!(peak > trough);
        assert!((peak - 1.05).abs() < 0.02);
        assert!((trough - 0.95).abs() < 0.02);
    }

    #[test]
    fn factor_mean_is_about_one() {
        let m = DiurnalModel::standard();
        let n = 7 * 24;
        let mean: f64 = (0..n)
            .map(|h| m.factor(SimTime::from_secs(f64::from(h) * 3_600.0)))
            .sum::<f64>()
            / f64::from(n);
        assert!((mean - 1.0).abs() < 0.01, "mean factor {mean}");
    }

    #[test]
    fn first_peak_after_is_the_next_peak() {
        let m = DiurnalModel::standard();
        let peak = m.first_peak_after(SimTime::ZERO);
        assert_eq!(peak.as_secs(), 18.0 * 3_600.0);
        // From just past the first peak, the next one is a day later.
        let peak2 = m.first_peak_after(peak + Seconds::new(1.0));
        assert_eq!(peak2.as_secs(), (24.0 + 18.0) * 3_600.0);
    }

    #[test]
    fn fleet_entry_round_trip() {
        let e = FleetEntry {
            rack: RackId::new(3),
            priority: Priority::P1,
        };
        assert_eq!(e.rack.index(), 3);
        assert_eq!(e.priority, Priority::P1);
    }
}
