//! Aggregate-series sampling and peak finding over traces.

use serde::{Deserialize, Serialize};

use recharge_units::{Seconds, SimTime, Watts};

use crate::model::RackPowerTrace;

/// One sampled point of an aggregate power series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TracePoint {
    /// Sample instant.
    pub at: SimTime,
    /// Aggregate fleet power at that instant.
    pub power: Watts,
}

/// Samples the aggregate power of `trace` over `[start, end)` every `step`.
///
/// # Panics
///
/// Panics if `step` is not positive or `end < start`.
pub fn sample_aggregate<T: RackPowerTrace + ?Sized>(
    trace: &T,
    start: SimTime,
    end: SimTime,
    step: Seconds,
) -> Vec<TracePoint> {
    assert!(step > Seconds::ZERO, "step must be positive");
    assert!(end >= start, "end must not precede start");
    let mut points = Vec::new();
    let mut at = start;
    while at < end {
        points.push(TracePoint {
            at,
            power: trace.aggregate_power(at),
        });
        at += step;
    }
    points
}

/// The instant of maximum aggregate power over `[start, end)` sampled every
/// `step` — used to place open transitions "at the first peak in the trace"
/// (§V-B), when available power is most constrained.
///
/// Returns `None` for an empty window.
///
/// # Panics
///
/// Panics if `step` is not positive.
pub fn find_peak<T: RackPowerTrace + ?Sized>(
    trace: &T,
    start: SimTime,
    end: SimTime,
    step: Seconds,
) -> Option<TracePoint> {
    sample_aggregate(trace, start, end, step)
        .into_iter()
        .max_by(|a, b| a.power.as_watts().total_cmp(&b.power.as_watts()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SyntheticFleet;

    #[test]
    fn sampling_produces_expected_count() {
        let fleet = SyntheticFleet::row(1, 1, 1, 0);
        let points = sample_aggregate(
            &fleet,
            SimTime::ZERO,
            SimTime::from_secs(30.0),
            Seconds::new(3.0),
        );
        assert_eq!(points.len(), 10);
        assert_eq!(points[0].at, SimTime::ZERO);
        assert!(points.iter().all(|p| p.power > Watts::ZERO));
    }

    #[test]
    fn peak_lands_near_the_diurnal_peak_hour() {
        let fleet = SyntheticFleet::paper_msb(9);
        let peak = find_peak(
            &fleet,
            SimTime::ZERO,
            SimTime::from_secs(24.0 * 3_600.0),
            Seconds::from_minutes(10.0),
        )
        .unwrap();
        let peak_hour = peak.at.as_secs() / 3_600.0;
        assert!(
            (15.0..21.0).contains(&peak_hour),
            "peak at hour {peak_hour:.1}, expected ≈18"
        );
        assert!(peak.power.as_megawatts() > 2.0);
    }

    #[test]
    fn empty_window_has_no_peak() {
        let fleet = SyntheticFleet::row(1, 0, 0, 0);
        assert!(find_peak(&fleet, SimTime::ZERO, SimTime::ZERO, Seconds::new(1.0)).is_none());
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn zero_step_panics() {
        let fleet = SyntheticFleet::row(1, 0, 0, 0);
        let _ = sample_aggregate(
            &fleet,
            SimTime::ZERO,
            SimTime::from_secs(1.0),
            Seconds::ZERO,
        );
    }
}
