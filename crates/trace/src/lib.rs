//! Rack power traces: the §V-B evaluation substrate.
//!
//! The paper replays a production rack power trace (316 racks under one MSB,
//! 3-second granularity, diurnal 1.9–2.1 MW aggregate — Fig 12). Production
//! traces are not publicly available, so this crate provides a calibrated
//! **synthetic generator** with the same shape, plus a recorded-trace type
//! with CSV persistence for captured windows.
//!
//! # Examples
//!
//! ```
//! use recharge_trace::{RackPowerTrace, SyntheticFleet};
//! use recharge_units::SimTime;
//!
//! // The paper's MSB: 89 P1 + 142 P2 + 85 P3 racks at ≈2 MW aggregate.
//! let fleet = SyntheticFleet::paper_msb(42);
//! let total = fleet.aggregate_power(SimTime::ZERO);
//! assert!((1.8..2.2).contains(&total.as_megawatts()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campus;
mod csv;
mod model;
mod oversub;
mod stats;
mod synth;

pub use campus::{CampusFleet, CampusFleetBuilder};
pub use csv::{CsvTraceError, RecordedTrace};
pub use model::{DiurnalModel, FleetEntry, RackPowerTrace};
pub use oversub::{analyze_oversubscription, max_safe_racks, OversubscriptionReport};
pub use stats::{find_peak, sample_aggregate, TracePoint};
pub use synth::{SyntheticFleet, SyntheticFleetBuilder};
