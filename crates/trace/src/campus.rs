//! Multi-MSB campus topologies: N independent paper rows, one per breaker.
//!
//! The paper evaluates one MSB of 316 racks (Fig 12); the related work we
//! track operates at multi-MSB campus scale. A [`CampusFleet`] replicates the
//! `paper_msb` row N times under independent MSB breakers, with per-row
//! derived seeds so the rows decorrelate, and presents the whole campus as a
//! single dense [`RackPowerTrace`] for the fleet backends to step.

use serde::{Deserialize, Serialize};

use recharge_units::{RackId, SimTime, Watts};

use crate::model::{FleetEntry, RackPowerTrace};
use crate::synth::{SyntheticFleet, SyntheticFleetBuilder};

/// Odd multiplier decorrelating per-row seeds (splitmix64's golden constant).
const SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Builder for a [`CampusFleet`] (C-BUILDER).
#[derive(Debug, Clone)]
pub struct CampusFleetBuilder {
    msbs: usize,
    seed: u64,
    counts: [usize; 3],
    mean_rack_power: Watts,
    noise_tick: Option<f64>,
    msb_limit: Watts,
}

impl CampusFleetBuilder {
    /// Starts a campus of `msbs` breakers seeded from `seed`, each carrying
    /// the calibrated §V-B row (89/142/85 racks ≈ 2 MW) under a 2.5 MW limit.
    #[must_use]
    pub fn new(msbs: usize, seed: u64) -> Self {
        CampusFleetBuilder {
            msbs,
            seed,
            counts: [89, 142, 85],
            mean_rack_power: Watts::from_kilowatts(6.33),
            noise_tick: None,
            msb_limit: Watts::from_megawatts(2.5),
        }
    }

    /// Sets the per-MSB rack counts per priority (P1, P2, P3).
    #[must_use]
    pub fn priority_counts(mut self, p1: usize, p2: usize, p3: usize) -> Self {
        self.counts = [p1, p2, p3];
        self
    }

    /// Sets the mean per-rack IT load.
    #[must_use]
    pub fn mean_rack_power(mut self, mean: Watts) -> Self {
        self.mean_rack_power = mean;
        self
    }

    /// Sets the noise-hold window of every row (see
    /// [`SyntheticFleetBuilder::noise_tick`]).
    #[must_use]
    pub fn noise_tick(mut self, seconds: f64) -> Self {
        self.noise_tick = Some(seconds);
        self
    }

    /// Sets the per-MSB breaker limit (default 2.5 MW, the paper's).
    #[must_use]
    pub fn msb_limit(mut self, limit: Watts) -> Self {
        self.msb_limit = limit;
        self
    }

    /// Builds the campus.
    ///
    /// # Panics
    ///
    /// Panics if `msbs` is zero or a row is empty.
    #[must_use]
    pub fn build(self) -> CampusFleet {
        assert!(self.msbs > 0, "campus must contain at least one MSB");
        let rows = (0..self.msbs)
            .map(|msb| {
                let row_seed = self
                    .seed
                    .wrapping_add((msb as u64).wrapping_mul(SEED_STRIDE));
                let mut builder = SyntheticFleetBuilder::new(row_seed)
                    .priority_counts(self.counts[0], self.counts[1], self.counts[2])
                    .mean_rack_power(self.mean_rack_power);
                if let Some(tick) = self.noise_tick {
                    builder = builder.noise_tick(tick);
                }
                builder.build()
            })
            .collect();
        CampusFleet::from_rows(rows, self.msb_limit)
    }
}

/// A campus of N independent MSBs, each replaying its own synthetic row.
///
/// Rack ids are dense across the campus: row `i`'s racks occupy the
/// contiguous id range starting at the sum of the preceding rows' sizes, so
/// the fleet backends (and their struct-of-arrays layouts) see one flat
/// fleet while [`CampusFleet::msb_of`] recovers the breaker topology.
///
/// # Examples
///
/// ```
/// use recharge_trace::{CampusFleet, RackPowerTrace};
/// use recharge_units::{RackId, SimTime};
///
/// let campus = CampusFleet::paper_campus(4, 7);
/// assert_eq!(campus.fleet().len(), 4 * 316);
/// assert_eq!(campus.msb_of(RackId::new(316)), Some(1));
/// // Each MSB carries its own ≈2 MW row under its own 2.5 MW breaker.
/// let p = campus.msb_aggregate_power(2, SimTime::ZERO);
/// assert!(p < campus.msb_limit());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampusFleet {
    rows: Vec<SyntheticFleet>,
    entries: Vec<FleetEntry>,
    /// Global rack-id offset of each row; `offsets[i]..offsets[i]+len(i)`.
    offsets: Vec<u32>,
    msb_limit: Watts,
}

impl CampusFleet {
    /// A campus of `msbs` copies of the §V-B evaluation row (316 racks,
    /// ≈2 MW each) under independent 2.5 MW breakers, seeded from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `msbs` is zero.
    #[must_use]
    pub fn paper_campus(msbs: usize, seed: u64) -> Self {
        CampusFleetBuilder::new(msbs, seed).build()
    }

    /// Assembles a campus from prebuilt rows, re-identifying their racks into
    /// one dense campus-wide id space.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty.
    #[must_use]
    pub fn from_rows(rows: Vec<SyntheticFleet>, msb_limit: Watts) -> Self {
        assert!(!rows.is_empty(), "campus must contain at least one MSB");
        let total: usize = rows.iter().map(|r| r.fleet().len()).sum();
        let mut entries = Vec::with_capacity(total);
        let mut offsets = Vec::with_capacity(rows.len());
        let mut next = 0u32;
        for row in &rows {
            offsets.push(next);
            for entry in row.fleet() {
                entries.push(FleetEntry {
                    rack: RackId::new(next + entry.rack.index()),
                    priority: entry.priority,
                });
            }
            next += u32::try_from(row.fleet().len()).expect("row exceeds u32 racks");
        }
        CampusFleet {
            rows,
            entries,
            offsets,
            msb_limit,
        }
    }

    /// Number of MSBs (independent breakers) on the campus.
    #[must_use]
    pub fn msb_count(&self) -> usize {
        self.rows.len()
    }

    /// The per-MSB breaker limit.
    #[must_use]
    pub fn msb_limit(&self) -> Watts {
        self.msb_limit
    }

    /// The MSB whose breaker feeds `rack`, or `None` for unknown racks.
    #[must_use]
    pub fn msb_of(&self, rack: RackId) -> Option<usize> {
        if rack.index() as usize >= self.entries.len() {
            return None;
        }
        // partition_point: first offset strictly greater than the rack, minus
        // one, is the row that contains it.
        Some(self.offsets.partition_point(|&o| o <= rack.index()) - 1)
    }

    /// The racks fed by MSB `msb`, in id order.
    ///
    /// # Panics
    ///
    /// Panics if `msb` is out of range.
    #[must_use]
    pub fn racks_under(&self, msb: usize) -> &[FleetEntry] {
        let start = self.offsets[msb] as usize;
        start
            .checked_add(self.rows[msb].fleet().len())
            .map(|end| &self.entries[start..end])
            .expect("row bounds overflow")
    }

    /// Aggregate IT load under MSB `msb` at instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `msb` is out of range.
    #[must_use]
    pub fn msb_aggregate_power(&self, msb: usize, at: SimTime) -> Watts {
        self.rows[msb].aggregate_power(at)
    }
}

impl RackPowerTrace for CampusFleet {
    fn fleet(&self) -> &[FleetEntry] {
        &self.entries
    }

    fn rack_power(&self, rack: RackId, at: SimTime) -> Watts {
        let Some(msb) = self.msb_of(rack) else {
            return Watts::ZERO;
        };
        let local = RackId::new(rack.index() - self.offsets[msb]);
        self.rows[msb].rack_power(local, at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recharge_units::Priority;

    #[test]
    fn paper_campus_is_n_paper_rows_with_dense_ids() {
        let campus = CampusFleet::paper_campus(3, 1);
        assert_eq!(campus.msb_count(), 3);
        assert_eq!(campus.fleet().len(), 3 * 316);
        for (i, e) in campus.fleet().iter().enumerate() {
            assert_eq!(e.rack.index() as usize, i, "ids must be campus-dense");
        }
        assert_eq!(campus.count_priority(Priority::P1), 3 * 89);
        assert_eq!(campus.count_priority(Priority::P2), 3 * 142);
        assert_eq!(campus.count_priority(Priority::P3), 3 * 85);
    }

    #[test]
    fn msb_of_maps_ranges_to_breakers() {
        let campus = CampusFleet::paper_campus(3, 2);
        assert_eq!(campus.msb_of(RackId::new(0)), Some(0));
        assert_eq!(campus.msb_of(RackId::new(315)), Some(0));
        assert_eq!(campus.msb_of(RackId::new(316)), Some(1));
        assert_eq!(campus.msb_of(RackId::new(2 * 316)), Some(2));
        assert_eq!(campus.msb_of(RackId::new(3 * 316 - 1)), Some(2));
        assert_eq!(campus.msb_of(RackId::new(3 * 316)), None);
        assert_eq!(campus.racks_under(1).len(), 316);
        assert_eq!(campus.racks_under(1)[0].rack, RackId::new(316));
    }

    #[test]
    fn each_msb_carries_an_independent_2mw_row() {
        let campus = CampusFleet::paper_campus(4, 5);
        let at = SimTime::from_secs(12_345.0);
        let mut aggregates = Vec::new();
        for msb in 0..campus.msb_count() {
            let p = campus.msb_aggregate_power(msb, at);
            assert!(
                (1.8..2.2).contains(&p.as_megawatts()),
                "MSB {msb} aggregate {p}"
            );
            assert!(p < campus.msb_limit());
            aggregates.push(p);
        }
        // Rows are seeded independently: no two identical aggregates.
        aggregates.dedup();
        assert_eq!(aggregates.len(), 4, "rows must decorrelate");
    }

    #[test]
    fn rack_power_delegates_to_the_owning_row() {
        let campus = CampusFleet::paper_campus(2, 9);
        let at = SimTime::from_secs(777.0);
        let row1 = SyntheticFleetBuilder::new(9u64.wrapping_add(SEED_STRIDE)).build();
        assert_eq!(
            campus.rack_power(RackId::new(316 + 10), at),
            row1.rack_power(RackId::new(10), at)
        );
        assert_eq!(campus.rack_power(RackId::new(9_999), at), Watts::ZERO);
    }

    #[test]
    fn determinism_per_seed() {
        let a = CampusFleet::paper_campus(2, 11);
        let b = CampusFleet::paper_campus(2, 11);
        let c = CampusFleet::paper_campus(2, 12);
        let t = SimTime::from_secs(3_600.0);
        assert_eq!(a.aggregate_power(t), b.aggregate_power(t));
        assert_ne!(a.aggregate_power(t), c.aggregate_power(t));
    }

    #[test]
    fn builder_customization() {
        let campus = CampusFleetBuilder::new(2, 0)
            .priority_counts(4, 3, 3)
            .mean_rack_power(Watts::from_kilowatts(5.0))
            .noise_tick(1.0)
            .msb_limit(Watts::from_kilowatts(80.0))
            .build();
        assert_eq!(campus.fleet().len(), 20);
        assert_eq!(campus.msb_limit(), Watts::from_kilowatts(80.0));
    }

    #[test]
    #[should_panic(expected = "at least one MSB")]
    fn zero_msbs_panics() {
        let _ = CampusFleet::paper_campus(0, 0);
    }
}
