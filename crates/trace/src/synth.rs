//! Synthetic fleet trace generator calibrated to the Fig 12 envelope.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use recharge_units::{Priority, RackId, SimTime, Watts};

use crate::model::{DiurnalModel, FleetEntry, RackPowerTrace};

/// Builder for a [`SyntheticFleet`] (C-BUILDER).
#[derive(Debug, Clone)]
pub struct SyntheticFleetBuilder {
    counts: [usize; 3],
    mean_rack_power: Watts,
    rack_power_spread: f64,
    diurnal: DiurnalModel,
    noise_fraction: f64,
    noise_tick: f64,
    seed: u64,
}

impl SyntheticFleetBuilder {
    /// Starts a builder with the calibrated §V-B defaults (aggregate ≈2 MW at
    /// 316 racks, ±5% diurnal swing, 1.5% per-tick noise at 3-second ticks).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SyntheticFleetBuilder {
            counts: [89, 142, 85],
            mean_rack_power: Watts::from_kilowatts(6.33),
            rack_power_spread: 0.15,
            diurnal: DiurnalModel::standard(),
            noise_fraction: 0.015,
            noise_tick: 3.0,
            seed,
        }
    }

    /// Sets the number of racks per priority (P1, P2, P3).
    #[must_use]
    pub fn priority_counts(mut self, p1: usize, p2: usize, p3: usize) -> Self {
        self.counts = [p1, p2, p3];
        self
    }

    /// Sets the mean per-rack IT load.
    #[must_use]
    pub fn mean_rack_power(mut self, mean: Watts) -> Self {
        self.mean_rack_power = mean;
        self
    }

    /// Sets the fractional spread of per-rack base loads (uniform ±spread).
    #[must_use]
    pub fn rack_power_spread(mut self, spread: f64) -> Self {
        self.rack_power_spread = spread.clamp(0.0, 0.9);
        self
    }

    /// Sets the diurnal model.
    #[must_use]
    pub fn diurnal(mut self, model: DiurnalModel) -> Self {
        self.diurnal = model;
        self
    }

    /// Sets the per-tick multiplicative noise amplitude.
    #[must_use]
    pub fn noise_fraction(mut self, fraction: f64) -> Self {
        self.noise_fraction = fraction.clamp(0.0, 0.5);
        self
    }

    /// Sets the noise-hold window in seconds (default 3 s, the paper trace's
    /// granularity): the per-rack noise factor is resampled every `seconds`.
    ///
    /// The simulator passes its scenario tick here so the trace's noise
    /// granularity agrees with the integration step instead of silently
    /// holding 3-second noise under a different tick.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is not positive and finite.
    #[must_use]
    pub fn noise_tick(mut self, seconds: f64) -> Self {
        assert!(
            seconds > 0.0 && seconds.is_finite(),
            "noise tick must be positive and finite, got {seconds}"
        );
        self.noise_tick = seconds;
        self
    }

    /// Builds the fleet.
    ///
    /// # Panics
    ///
    /// Panics if all priority counts are zero.
    #[must_use]
    pub fn build(self) -> SyntheticFleet {
        let total: usize = self.counts.iter().sum();
        assert!(total > 0, "fleet must contain at least one rack");

        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut fleet = Vec::with_capacity(total);
        let mut base = Vec::with_capacity(total);
        let mut next = 0u32;
        for (idx, &count) in self.counts.iter().enumerate() {
            let priority = Priority::ALL[idx];
            for _ in 0..count {
                fleet.push(FleetEntry {
                    rack: RackId::new(next),
                    priority,
                });
                let jitter = 1.0 + rng.gen_range(-self.rack_power_spread..=self.rack_power_spread);
                base.push(self.mean_rack_power * jitter);
                next += 1;
            }
        }

        SyntheticFleet {
            fleet,
            base,
            diurnal: self.diurnal,
            noise_fraction: self.noise_fraction,
            noise_tick: self.noise_tick,
            seed: self.seed,
        }
    }
}

/// A deterministic synthetic fleet trace: per-rack base load × shared diurnal
/// factor × per-rack-per-tick hash noise.
///
/// The trace is *functional* — nothing is materialized — so a week of
/// 3-second samples for hundreds of racks costs no memory, matching how the
/// simulator queries it.
///
/// # Examples
///
/// ```
/// use recharge_trace::{RackPowerTrace, SyntheticFleet};
/// use recharge_units::{Priority, RackId, SimTime};
///
/// let fleet = SyntheticFleet::paper_msb(7);
/// assert_eq!(fleet.fleet().len(), 316);
/// assert_eq!(fleet.count_priority(Priority::P1), 89);
/// // Determinism: same query, same answer.
/// let a = fleet.rack_power(RackId::new(0), SimTime::from_secs(100.0));
/// let b = fleet.rack_power(RackId::new(0), SimTime::from_secs(100.0));
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticFleet {
    fleet: Vec<FleetEntry>,
    base: Vec<Watts>,
    diurnal: DiurnalModel,
    noise_fraction: f64,
    noise_tick: f64,
    seed: u64,
}

impl SyntheticFleet {
    /// The §V-B evaluation fleet: 89 P1 + 142 P2 + 85 P3 racks (316 total)
    /// with a 1.9–2.1 MW diurnal aggregate.
    #[must_use]
    pub fn paper_msb(seed: u64) -> Self {
        SyntheticFleetBuilder::new(seed).build()
    }

    /// A small single-row fleet (used by the prototype experiments): `counts`
    /// racks per priority at a typical 6 kW rack load.
    #[must_use]
    pub fn row(p1: usize, p2: usize, p3: usize, seed: u64) -> Self {
        SyntheticFleetBuilder::new(seed)
            .priority_counts(p1, p2, p3)
            .mean_rack_power(Watts::from_kilowatts(6.0))
            .build()
    }

    /// The diurnal model in use.
    #[must_use]
    pub fn diurnal(&self) -> &DiurnalModel {
        &self.diurnal
    }

    /// Deterministic per-rack-per-tick noise factor around 1.0.
    fn noise(&self, rack: RackId, at: SimTime) -> f64 {
        if self.noise_fraction == 0.0 {
            return 1.0;
        }
        let tick = (at.as_secs() / self.noise_tick).floor() as u64;
        let mut h = self.seed ^ (u64::from(rack.index()).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        h ^= tick.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 30;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        // Map to [−1, 1).
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0;
        1.0 + self.noise_fraction * unit
    }
}

impl RackPowerTrace for SyntheticFleet {
    fn fleet(&self) -> &[FleetEntry] {
        &self.fleet
    }

    fn rack_power(&self, rack: RackId, at: SimTime) -> Watts {
        let idx = rack.index() as usize;
        if idx >= self.base.len() {
            return Watts::ZERO;
        }
        self.base[idx] * self.diurnal.factor(at) * self.noise(rack, at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_msb_aggregate_envelope() {
        // Fig 12: aggregate cycles between ≈1.9 and ≈2.1 MW over the week.
        let fleet = SyntheticFleet::paper_msb(1);
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for hour in 0..(7 * 24) {
            let p = fleet.aggregate_power(SimTime::from_secs(f64::from(hour) * 3_600.0));
            min = min.min(p.as_megawatts());
            max = max.max(p.as_megawatts());
        }
        assert!((1.82..1.95).contains(&min), "min {min:.3} MW");
        assert!((2.05..2.18).contains(&max), "max {max:.3} MW");
    }

    #[test]
    fn priority_mix_matches_paper() {
        let fleet = SyntheticFleet::paper_msb(1);
        assert_eq!(fleet.count_priority(Priority::P1), 89);
        assert_eq!(fleet.count_priority(Priority::P2), 142);
        assert_eq!(fleet.count_priority(Priority::P3), 85);
        assert_eq!(fleet.fleet().len(), 316);
    }

    #[test]
    fn racks_are_heterogeneous_but_bounded() {
        let fleet = SyntheticFleet::paper_msb(2);
        let at = SimTime::ZERO;
        let powers: Vec<f64> = fleet
            .fleet()
            .iter()
            .map(|e| fleet.rack_power(e.rack, at).as_kilowatts())
            .collect();
        let min = powers.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = powers.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(min > 4.0, "min rack {min:.2} kW");
        assert!(max < 9.0, "max rack {max:.2} kW");
        assert!(max - min > 0.5, "racks should differ");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SyntheticFleet::paper_msb(5);
        let b = SyntheticFleet::paper_msb(5);
        let c = SyntheticFleet::paper_msb(6);
        let t = SimTime::from_secs(12_345.0);
        assert_eq!(a.aggregate_power(t), b.aggregate_power(t));
        assert_ne!(a.aggregate_power(t), c.aggregate_power(t));
    }

    #[test]
    fn unknown_rack_draws_zero() {
        let fleet = SyntheticFleet::row(2, 2, 2, 0);
        assert_eq!(
            fleet.rack_power(RackId::new(99), SimTime::ZERO),
            Watts::ZERO
        );
    }

    #[test]
    fn noise_changes_between_ticks_but_not_within() {
        let fleet = SyntheticFleet::paper_msb(3);
        let r = RackId::new(10);
        let a = fleet.rack_power(r, SimTime::from_secs(0.0));
        let b = fleet.rack_power(r, SimTime::from_secs(1.0)); // same 3 s tick
        let c = fleet.rack_power(r, SimTime::from_secs(4.0)); // next tick
        assert!(
            (a.as_watts() - b.as_watts()).abs() < 0.2,
            "within-tick drift"
        );
        assert_ne!(a, c);
    }

    #[test]
    fn zero_noise_builder() {
        let fleet = SyntheticFleetBuilder::new(0).noise_fraction(0.0).build();
        let r = RackId::new(0);
        let a = fleet.rack_power(r, SimTime::from_secs(0.0));
        let b = fleet.rack_power(r, SimTime::from_secs(3.0));
        assert!((a.as_watts() - b.as_watts()).abs() < 1.0);
    }

    #[test]
    fn builder_customization() {
        let fleet = SyntheticFleetBuilder::new(1)
            .priority_counts(10, 0, 0)
            .mean_rack_power(Watts::from_kilowatts(10.0))
            .rack_power_spread(0.0)
            .noise_fraction(0.0)
            .build();
        assert_eq!(fleet.fleet().len(), 10);
        let p = fleet.rack_power(RackId::new(0), SimTime::from_secs(18.0 * 3_600.0));
        // At the diurnal peak: 10 kW × 1.05 (plus tiny weekly term).
        assert!((p.as_kilowatts() - 10.5).abs() < 0.2, "peak rack power {p}");
    }

    #[test]
    #[should_panic(expected = "at least one rack")]
    fn empty_fleet_panics() {
        let _ = SyntheticFleetBuilder::new(0)
            .priority_counts(0, 0, 0)
            .build();
    }

    #[test]
    fn noise_tick_sets_the_hold_window() {
        let fleet = SyntheticFleetBuilder::new(3).noise_tick(1.0).build();
        let r = RackId::new(10);
        let a = fleet.rack_power(r, SimTime::from_secs(0.0));
        let c = fleet.rack_power(r, SimTime::from_secs(1.0)); // next 1 s window
        assert_ne!(a, c, "1 s noise tick must resample every second");
    }

    #[test]
    #[should_panic(expected = "noise tick must be positive")]
    fn zero_noise_tick_panics() {
        let _ = SyntheticFleetBuilder::new(0).noise_tick(0.0);
    }

    #[test]
    #[should_panic(expected = "noise tick must be positive")]
    fn nan_noise_tick_panics() {
        let _ = SyntheticFleetBuilder::new(0).noise_tick(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "noise tick must be positive")]
    fn negative_noise_tick_panics() {
        let _ = SyntheticFleetBuilder::new(0).noise_tick(-3.0);
    }
}
