//! Recorded (materialized) traces with CSV persistence.
//!
//! The CSV layout is wide: one row per sample tick, one column per rack,
//! with a two-line header carrying rack ids and priorities. This is the
//! interchange format for captured windows of production-like data.

use serde::{Deserialize, Serialize};
use std::io::{BufRead, Write};

use recharge_units::{Priority, RackId, Seconds, SimTime, Watts};

use crate::model::{FleetEntry, RackPowerTrace};

/// Errors from CSV trace round-trips.
#[derive(Debug)]
#[non_exhaustive]
pub enum CsvTraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural or numeric problem in the CSV body; the message names the
    /// offending line.
    Malformed(String),
}

impl core::fmt::Display for CsvTraceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CsvTraceError::Io(e) => write!(f, "trace i/o failed: {e}"),
            CsvTraceError::Malformed(what) => write!(f, "malformed trace csv: {what}"),
        }
    }
}

impl std::error::Error for CsvTraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CsvTraceError::Io(e) => Some(e),
            CsvTraceError::Malformed(_) => None,
        }
    }
}

impl From<std::io::Error> for CsvTraceError {
    fn from(e: std::io::Error) -> Self {
        CsvTraceError::Io(e)
    }
}

/// A materialized trace: fixed-step samples for a fixed fleet.
///
/// # Examples
///
/// ```
/// use recharge_trace::{RackPowerTrace, RecordedTrace, SyntheticFleet};
/// use recharge_units::{Seconds, SimTime};
///
/// // Capture 30 s of a synthetic fleet and round-trip it through CSV.
/// let fleet = SyntheticFleet::row(2, 1, 1, 3);
/// let recorded = RecordedTrace::capture(&fleet, SimTime::ZERO, Seconds::new(30.0), Seconds::new(3.0));
/// let mut csv = Vec::new();
/// recorded.write_csv(&mut csv)?;
/// let back = RecordedTrace::read_csv(&csv[..])?;
/// assert_eq!(back.fleet().len(), 4);
/// # Ok::<(), recharge_trace::CsvTraceError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecordedTrace {
    fleet: Vec<FleetEntry>,
    start: SimTime,
    step: Seconds,
    /// `rows[tick][rack_index]`.
    rows: Vec<Vec<Watts>>,
}

impl RecordedTrace {
    /// Captures a window of another trace at a fixed step.
    ///
    /// # Panics
    ///
    /// Panics if `step` is not positive or `length` is negative.
    #[must_use]
    pub fn capture<T: RackPowerTrace + ?Sized>(
        source: &T,
        start: SimTime,
        length: Seconds,
        step: Seconds,
    ) -> Self {
        assert!(step > Seconds::ZERO, "step must be positive");
        assert!(length >= Seconds::ZERO, "length must be non-negative");
        let fleet = source.fleet().to_vec();
        let ticks = (length / step).floor() as usize;
        let mut rows = Vec::with_capacity(ticks);
        for tick in 0..ticks {
            let at = start + step * tick as f64;
            rows.push(
                fleet
                    .iter()
                    .map(|e| source.rack_power(e.rack, at))
                    .collect(),
            );
        }
        RecordedTrace {
            fleet,
            start,
            step,
            rows,
        }
    }

    /// The capture start instant.
    #[must_use]
    pub fn start(&self) -> SimTime {
        self.start
    }

    /// The sample step.
    #[must_use]
    pub fn step(&self) -> Seconds {
        self.step
    }

    /// Number of sample ticks.
    #[must_use]
    pub fn tick_count(&self) -> usize {
        self.rows.len()
    }

    /// Serializes to CSV. A `&mut` writer may be passed (C-RW-VALUE).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_csv<W: Write>(&self, mut w: W) -> Result<(), CsvTraceError> {
        write!(
            w,
            "# start_s={} step_s={} racks=",
            self.start.as_secs(),
            self.step.as_secs()
        )?;
        let ids: Vec<String> = self
            .fleet
            .iter()
            .map(|e| e.rack.index().to_string())
            .collect();
        writeln!(w, "{}", ids.join(";"))?;
        let prios: Vec<String> = self.fleet.iter().map(|e| e.priority.to_string()).collect();
        writeln!(w, "# priorities={}", prios.join(";"))?;
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|p| format!("{:.3}", p.as_watts())).collect();
            writeln!(w, "{}", cells.join(","))?;
        }
        Ok(())
    }

    /// Deserializes from CSV produced by [`RecordedTrace::write_csv`]. A
    /// `&mut` reader may be passed (C-RW-VALUE).
    ///
    /// # Errors
    ///
    /// Returns [`CsvTraceError::Malformed`] on structural problems and
    /// [`CsvTraceError::Io`] on read failures.
    pub fn read_csv<R: BufRead>(r: R) -> Result<Self, CsvTraceError> {
        let mut lines = r.lines();
        let header = lines
            .next()
            .ok_or_else(|| CsvTraceError::Malformed("missing header".into()))??;
        let (start, step, ids) = Self::parse_header(&header)?;
        let prio_line = lines
            .next()
            .ok_or_else(|| CsvTraceError::Malformed("missing priorities line".into()))??;
        let priorities = Self::parse_priorities(&prio_line, ids.len())?;

        let fleet: Vec<FleetEntry> = ids
            .into_iter()
            .zip(priorities)
            .map(|(id, priority)| FleetEntry {
                rack: RackId::new(id),
                priority,
            })
            .collect();

        let mut rows = Vec::new();
        for (lineno, line) in lines.enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let row: Result<Vec<Watts>, _> = line
                .split(',')
                .map(|cell| {
                    cell.trim().parse::<f64>().map(Watts::new).map_err(|_| {
                        CsvTraceError::Malformed(format!("bad number on data line {lineno}"))
                    })
                })
                .collect();
            let row = row?;
            if row.len() != fleet.len() {
                return Err(CsvTraceError::Malformed(format!(
                    "data line {lineno} has {} cells, expected {}",
                    row.len(),
                    fleet.len()
                )));
            }
            rows.push(row);
        }
        Ok(RecordedTrace {
            fleet,
            start,
            step,
            rows,
        })
    }

    fn parse_header(header: &str) -> Result<(SimTime, Seconds, Vec<u32>), CsvTraceError> {
        let malformed = |what: &str| CsvTraceError::Malformed(what.to_owned());
        let rest = header
            .strip_prefix("# ")
            .ok_or_else(|| malformed("header must start with '# '"))?;
        let mut start = None;
        let mut step = None;
        let mut ids = None;
        for field in rest.split_whitespace() {
            if let Some(v) = field.strip_prefix("start_s=") {
                start = v.parse::<f64>().ok().map(SimTime::from_secs);
            } else if let Some(v) = field.strip_prefix("step_s=") {
                step = v.parse::<f64>().ok().map(Seconds::new);
            } else if let Some(v) = field.strip_prefix("racks=") {
                let parsed: Result<Vec<u32>, _> = v.split(';').map(str::parse::<u32>).collect();
                ids = parsed.ok();
            }
        }
        match (start, step, ids) {
            (Some(s), Some(st), Some(i)) if st > Seconds::ZERO && !i.is_empty() => Ok((s, st, i)),
            _ => Err(malformed("header missing start_s/step_s/racks fields")),
        }
    }

    fn parse_priorities(line: &str, expected: usize) -> Result<Vec<Priority>, CsvTraceError> {
        let rest = line
            .strip_prefix("# priorities=")
            .ok_or_else(|| CsvTraceError::Malformed("second line must carry priorities".into()))?;
        let parsed: Result<Vec<Priority>, _> = rest.split(';').map(Priority::parse).collect();
        let prios = parsed.map_err(|_| CsvTraceError::Malformed("unparseable priority".into()))?;
        if prios.len() != expected {
            return Err(CsvTraceError::Malformed(format!(
                "{} priorities for {} racks",
                prios.len(),
                expected
            )));
        }
        Ok(prios)
    }
}

impl RackPowerTrace for RecordedTrace {
    fn fleet(&self) -> &[FleetEntry] {
        &self.fleet
    }

    /// Piecewise-constant playback: each tick's sample holds until the next.
    /// Queries before the window use the first tick; after it, the last.
    fn rack_power(&self, rack: RackId, at: SimTime) -> Watts {
        let Some(col) = self.fleet.iter().position(|e| e.rack == rack) else {
            return Watts::ZERO;
        };
        if self.rows.is_empty() {
            return Watts::ZERO;
        }
        let tick = ((at - self.start) / self.step).floor();
        let idx = if tick < 0.0 {
            0
        } else {
            (tick as usize).min(self.rows.len() - 1)
        };
        self.rows[idx][col]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SyntheticFleet;

    fn recorded() -> RecordedTrace {
        let fleet = SyntheticFleet::row(2, 1, 1, 5);
        RecordedTrace::capture(
            &fleet,
            SimTime::from_secs(9.0),
            Seconds::new(30.0),
            Seconds::new(3.0),
        )
    }

    #[test]
    fn capture_shape() {
        let r = recorded();
        assert_eq!(r.tick_count(), 10);
        assert_eq!(r.fleet().len(), 4);
        assert_eq!(r.step(), Seconds::new(3.0));
        assert_eq!(r.start(), SimTime::from_secs(9.0));
    }

    #[test]
    fn csv_round_trip_preserves_everything() {
        let r = recorded();
        let mut buf = Vec::new();
        r.write_csv(&mut buf).unwrap();
        let back = RecordedTrace::read_csv(&buf[..]).unwrap();
        assert_eq!(back.fleet(), r.fleet());
        assert_eq!(back.tick_count(), r.tick_count());
        let at = SimTime::from_secs(15.0);
        for e in r.fleet() {
            let orig = r.rack_power(e.rack, at).as_watts();
            let rt = back.rack_power(e.rack, at).as_watts();
            assert!((orig - rt).abs() < 0.01, "{orig} vs {rt}");
        }
    }

    #[test]
    fn playback_is_piecewise_constant_and_clamped() {
        let r = recorded();
        let rack = r.fleet()[0].rack;
        let within = r.rack_power(rack, SimTime::from_secs(10.0));
        let same_tick = r.rack_power(rack, SimTime::from_secs(11.9));
        assert_eq!(within, same_tick);
        // Before the window clamps to the first sample; after, to the last.
        assert_eq!(
            r.rack_power(rack, SimTime::ZERO),
            r.rack_power(rack, SimTime::from_secs(9.0))
        );
        assert_eq!(
            r.rack_power(rack, SimTime::from_secs(10_000.0)),
            r.rack_power(rack, SimTime::from_secs(9.0 + 27.0))
        );
    }

    #[test]
    fn unknown_rack_is_zero() {
        let r = recorded();
        assert_eq!(
            r.rack_power(RackId::new(77), SimTime::from_secs(12.0)),
            Watts::ZERO
        );
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(RecordedTrace::read_csv(&b"garbage"[..]).is_err());
        assert!(
            RecordedTrace::read_csv(&b"# start_s=0 step_s=3 racks=0;1\n# priorities=P1\n"[..])
                .is_err()
        );
        let bad_cells = b"# start_s=0 step_s=3 racks=0;1\n# priorities=P1;P2\n1.0\n";
        assert!(matches!(
            RecordedTrace::read_csv(&bad_cells[..]),
            Err(CsvTraceError::Malformed(_))
        ));
        let bad_number = b"# start_s=0 step_s=3 racks=0\n# priorities=P1\nxyz\n";
        assert!(RecordedTrace::read_csv(&bad_number[..]).is_err());
    }

    #[test]
    fn error_display() {
        let e = CsvTraceError::Malformed("x".into());
        assert!(e.to_string().contains("malformed"));
    }
}
