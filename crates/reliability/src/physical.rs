//! Physically grounded AOR: instead of parameterizing the battery by a fixed
//! charging time (Fig 9a's x-axis), replay the sampled failure events through
//! the calibrated battery model, with the charging current chosen per event
//! by an arbitrary rule.
//!
//! This closes the loop between §IV-A's reliability analysis and §IV-C's
//! coordination policy: pass the Fig 9(b) SLA rule for a priority and the
//! emergent AOR should land at that priority's Table II target; pass a
//! throttled 1 A rule and you measure the redundancy cost of coordination
//! ("we prefer to relax the redundancy provided by the batteries", §V-B2).

use recharge_battery::{BbuParams, ChargeTimeTable};
use recharge_units::{Amperes, Dod, Seconds, Watts};

use crate::aor::{trial_seed, AorSimulation};

/// Result of one physical AOR run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhysicalAorReport {
    /// Fraction of time the battery was fully charged.
    pub aor: f64,
    /// Power-loss episodes per year in the sampled stream.
    pub episodes_per_year: f64,
    /// Mean battery depth of discharge at charge start.
    pub mean_event_dod: Dod,
    /// Mean time to recharge after an event.
    pub mean_charge_time: Seconds,
    /// Events whose recharge was still incomplete when the next event began
    /// (depth carried over).
    pub compound_events: usize,
}

/// Replays Table I failure events through the battery model.
#[derive(Debug, Clone)]
pub struct PhysicalAorSimulation {
    events: AorSimulation,
    rack_load: Watts,
    params: BbuParams,
}

impl PhysicalAorSimulation {
    /// Creates a physical AOR simulation: `events` samples the power-loss
    /// stream, `rack_load` is the rack IT load carried by the batteries
    /// during each loss.
    #[must_use]
    pub fn new(events: AorSimulation, rack_load: Watts) -> Self {
        PhysicalAorSimulation {
            events,
            rack_load,
            params: BbuParams::production(),
        }
    }

    /// Runs `horizon_years` with the charging current chosen per event by
    /// `current_for` (given the event's depth of discharge), using `table`
    /// for the resulting charge times.
    ///
    /// If a new power loss begins before the previous recharge completes, the
    /// remaining depth carries over (linear-in-time recharge approximation
    /// between events).
    ///
    /// # Panics
    ///
    /// Panics if `horizon_years` is not positive.
    pub fn run_with<F>(
        &self,
        horizon_years: f64,
        seed: u64,
        table: &ChargeTimeTable,
        mut current_for: F,
    ) -> PhysicalAorReport
    where
        F: FnMut(Dod) -> Amperes,
    {
        let timeline = self.events.run(horizon_years, seed);
        let horizon = timeline.horizon_secs();
        let intervals = timeline.intervals();

        // Per-BBU discharge rate while carrying its share of the rack.
        let per_bbu = self.rack_load / f64::from(self.params.bbus_per_rack);
        let dod_per_sec = per_bbu.as_watts() / self.params.full_discharge_energy.as_joules();

        let mut lost = 0.0;
        let mut dod_carry = 0.0f64;
        let mut charged_until = f64::NEG_INFINITY;
        let mut dod_sum = 0.0;
        let mut charge_time_sum = 0.0;
        let mut compound = 0;

        for (i, &(start, end)) in intervals.iter().enumerate() {
            // Carry-over: how much recharge was still pending at this start?
            if charged_until > start {
                compound += 1;
            } else {
                dod_carry = 0.0;
            }

            let dod = (dod_carry + dod_per_sec * (end - start)).min(1.0);
            let current = current_for(Dod::new(dod));
            let charge_secs = table
                .charge_time(
                    Dod::new(dod),
                    current.clamp(Amperes::MIN_CHARGE, Amperes::MAX_CHARGE),
                )
                .expect("hardware-range current within table")
                .as_secs();
            dod_sum += dod;
            charge_time_sum += charge_secs;
            charged_until = end + charge_secs;

            let next_start = intervals.get(i + 1).map_or(f64::INFINITY, |&(s, _)| s);
            let redundant_again = charged_until.min(next_start).min(horizon);
            lost += (redundant_again - start).max(0.0);

            // Linear recharge approximation for the carried depth.
            if next_start < charged_until {
                let progressed = ((next_start - end) / charge_secs).clamp(0.0, 1.0);
                dod_carry = dod * (1.0 - progressed);
            }
        }

        let n = intervals.len().max(1) as f64;
        PhysicalAorReport {
            aor: 1.0 - lost / horizon,
            episodes_per_year: timeline.episodes_per_year(),
            mean_event_dod: Dod::new(dod_sum / n),
            mean_charge_time: Seconds::new(charge_time_sum / n),
            compound_events: compound,
        }
    }

    /// Replays `trials` independent blocks of `years_per_trial` each (trial
    /// `t` seeded by [`trial_seed`]`(seed, t)`) and aggregates the per-trial
    /// reports in trial order — a pure function of the inputs, so
    /// [`run_trials_parallel_with`](Self::run_trials_parallel_with) returns a
    /// bit-identical report on any thread count.
    ///
    /// `current_for` is `Fn` (not `FnMut`) here: every trial queries it
    /// independently, so it must not carry cross-event mutable state.
    ///
    /// # Panics
    ///
    /// Panics if `years_per_trial` is not positive.
    pub fn run_trials_with<F>(
        &self,
        years_per_trial: f64,
        trials: usize,
        seed: u64,
        table: &ChargeTimeTable,
        current_for: F,
    ) -> PhysicalAorReport
    where
        F: Fn(Dod) -> Amperes,
    {
        let _trace = recharge_telemetry::env_trace_scope();
        let reports: Vec<PhysicalAorReport> = (0..trials)
            .map(|t| self.run_with(years_per_trial, trial_seed(seed, t), table, &current_for))
            .collect();
        aggregate_reports(&reports, years_per_trial)
    }

    /// The parallel twin of [`run_trials_with`](Self::run_trials_with):
    /// distributes trials over `threads` OS threads (clamped to
    /// `[1, trials]`), each owning a disjoint chunk of result slots.
    ///
    /// # Panics
    ///
    /// Panics if `years_per_trial` is not positive.
    pub fn run_trials_parallel_with<F>(
        &self,
        years_per_trial: f64,
        trials: usize,
        seed: u64,
        threads: usize,
        table: &ChargeTimeTable,
        current_for: F,
    ) -> PhysicalAorReport
    where
        F: Fn(Dod) -> Amperes + Sync,
    {
        let _trace = recharge_telemetry::env_trace_scope();
        let threads = threads.clamp(1, trials.max(1));
        let mut results: Vec<Option<PhysicalAorReport>> = vec![None; trials];
        let chunk = trials.div_ceil(threads);
        std::thread::scope(|scope| {
            for (c, slots) in results.chunks_mut(chunk.max(1)).enumerate() {
                let sim = &*self;
                let current_for = &current_for;
                scope.spawn(move || {
                    for (offset, slot) in slots.iter_mut().enumerate() {
                        let t = c * chunk + offset;
                        *slot = Some(sim.run_with(
                            years_per_trial,
                            trial_seed(seed, t),
                            table,
                            current_for,
                        ));
                    }
                });
            }
        });
        let reports: Vec<PhysicalAorReport> = results
            .into_iter()
            .map(|r| r.expect("all trials ran"))
            .collect();
        aggregate_reports(&reports, years_per_trial)
    }
}

/// Combines per-trial reports: time-based metrics average over equal-length
/// trials, event-based metrics weight by each trial's event count, and
/// compound events sum. Summation runs in trial order so the result is
/// independent of which thread produced which report.
fn aggregate_reports(reports: &[PhysicalAorReport], years_per_trial: f64) -> PhysicalAorReport {
    let n = reports.len().max(1) as f64;
    let mut aor_sum = 0.0;
    let mut epy_sum = 0.0;
    let mut events = 0.0;
    let mut dod_weighted = 0.0;
    let mut charge_time_weighted = 0.0;
    let mut compound = 0;
    for r in reports {
        let trial_events = r.episodes_per_year * years_per_trial;
        aor_sum += r.aor;
        epy_sum += r.episodes_per_year;
        events += trial_events;
        dod_weighted += r.mean_event_dod.value() * trial_events;
        charge_time_weighted += r.mean_charge_time.as_secs() * trial_events;
        compound += r.compound_events;
    }
    let events = events.max(1.0);
    PhysicalAorReport {
        aor: aor_sum / n,
        episodes_per_year: epy_sum / n,
        mean_event_dod: Dod::new(dod_weighted / events),
        mean_charge_time: Seconds::new(charge_time_weighted / events),
        compound_events: compound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table1::standard_sources;
    use recharge_battery::{variable_current, ChargePolicy};

    fn sim() -> PhysicalAorSimulation {
        PhysicalAorSimulation::new(
            AorSimulation::new(standard_sources()),
            Watts::from_kilowatts(6.3),
        )
    }

    fn table() -> &'static ChargeTimeTable {
        ChargeTimeTable::production()
    }

    #[test]
    fn variable_charger_aor_is_high() {
        // Open transitions average 45 s → ≈16% DOD at 6.3 kW (rare multi-hour
        // outages pull the mean up further): the variable charger recovers in
        // ≈15 min, so AOR stays well above 99.9%.
        let report = sim().run_with(3_000.0, 5, table(), variable_current);
        assert!(report.aor > 0.999, "AOR {:.5}", report.aor);
        assert!((8.0..11.5).contains(&report.episodes_per_year));
        assert!(
            report.mean_event_dod < Dod::new(0.3),
            "{}",
            report.mean_event_dod
        );
        assert!(report.mean_charge_time < Seconds::from_minutes(45.0));
    }

    #[test]
    fn throttled_charging_costs_redundancy() {
        // Forcing every event to the 1 A floor visibly lowers AOR versus the
        // 5 A original charger — the coordination trade the paper accepts.
        let fast = sim().run_with(3_000.0, 7, table(), |dod| {
            ChargePolicy::Original.automatic_current(dod)
        });
        let slow = sim().run_with(3_000.0, 7, table(), |_| Amperes::MIN_CHARGE);
        assert!(
            slow.aor < fast.aor,
            "slow {:.5} vs fast {:.5}",
            slow.aor,
            fast.aor
        );
        assert!(slow.mean_charge_time > fast.mean_charge_time);
        // Both remain above the paper's lowest published target band.
        assert!(slow.aor > 0.995);
    }

    #[test]
    fn compound_events_are_detected() {
        // With an artificially slow charge (1 A) and frequent events, some
        // recharges will still be in flight when the next loss hits.
        let report = sim().run_with(5_000.0, 11, table(), |_| Amperes::MIN_CHARGE);
        assert!(report.compound_events > 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = sim().run_with(500.0, 3, table(), variable_current);
        let b = sim().run_with(500.0, 3, table(), variable_current);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_trials_are_bit_identical_to_serial() {
        let s = sim();
        let serial = s.run_trials_with(100.0, 8, 21, table(), variable_current);
        for threads in [1, 2, 3, 8, 32] {
            let parallel =
                s.run_trials_parallel_with(100.0, 8, 21, threads, table(), variable_current);
            assert_eq!(serial, parallel, "diverged at {threads} threads");
        }
    }

    #[test]
    fn trial_aggregate_matches_long_run_statistics() {
        let s = sim();
        let trials = s.run_trials_with(300.0, 10, 5, table(), variable_current);
        assert!(trials.aor > 0.999, "AOR {:.5}", trials.aor);
        assert!((8.0..11.5).contains(&trials.episodes_per_year));
        assert!(trials.mean_event_dod < Dod::new(0.3));
    }
}
