//! Monte-Carlo reliability modelling of rack input power (§IV-A).
//!
//! The paper derives per-priority battery charging-time SLAs from the
//! *availability of redundancy* (AOR): the fraction of time a rack's battery
//! is fully charged. This crate reproduces that analysis:
//!
//! * [`table1`] — the published component failure/repair data (Table I).
//! * [`dist`] — the distributional assumptions (exponential failures and
//!   repairs, normal annual maintenance, exponential 45-second open
//!   transitions), implemented directly over [`rand`] since `rand_distr` is
//!   outside the approved dependency set.
//! * [`AorSimulation`] — samples failure events over a horizon of up to 10⁵
//!   years and reduces them to a merged timeline of rack-input-power-loss
//!   intervals.
//! * [`PowerLossTimeline::aor`] — evaluates AOR for any battery charging time
//!   over that common event stream, yielding the Fig 9(a) curve.
//!
//! # Examples
//!
//! ```
//! use recharge_reliability::{AorSimulation, table1};
//! use recharge_units::Seconds;
//!
//! let sim = AorSimulation::new(table1::standard_sources());
//! let timeline = sim.run(1_000.0, 42);
//! let aor_30 = timeline.aor(Seconds::from_minutes(30.0));
//! let aor_90 = timeline.aor(Seconds::from_minutes(90.0));
//! assert!(aor_30 > aor_90); // slower charging → less redundancy
//! assert!(aor_30 > 0.999);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aor;
pub mod dist;
mod physical;
pub mod table1;

pub use aor::{trial_seed, AorCurve, AorSimulation, PowerLossTimeline};
pub use physical::{PhysicalAorReport, PhysicalAorSimulation};
pub use table1::{Component, FailureSource, FailureType};
