//! Sampling distributions used by the reliability model.
//!
//! Implemented directly over [`rand`]'s uniform source because `rand_distr`
//! is not part of the approved dependency set: the exponential uses inverse
//! transform sampling and the normal uses the Box–Muller transform.

use rand::Rng;

/// Exponential distribution with the given mean (inverse-rate parameterized).
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use recharge_reliability::dist::Exponential;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let d = Exponential::with_mean(45.0);
/// let x = d.sample(&mut rng);
/// assert!(x >= 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Creates an exponential distribution with mean `mean`.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    #[must_use]
    pub fn with_mean(mean: f64) -> Self {
        assert!(
            mean > 0.0 && mean.is_finite(),
            "exponential mean must be positive"
        );
        Exponential { mean }
    }

    /// The distribution mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Draws one sample via inverse transform: `−mean · ln(1 − u)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        -self.mean * (1.0 - u).ln()
    }
}

/// Normal distribution (Box–Muller), optionally truncated below.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or either parameter is non-finite.
    #[must_use]
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(mean.is_finite() && std_dev.is_finite() && std_dev >= 0.0);
        Normal { mean, std_dev }
    }

    /// The distribution mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distribution standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Draws one sample via the Box–Muller transform.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }

    /// Draws one sample, redrawing until it exceeds `floor` (used to keep
    /// annual-maintenance intervals positive).
    pub fn sample_above<R: Rng + ?Sized>(&self, rng: &mut R, floor: f64) -> f64 {
        for _ in 0..1_000 {
            let x = self.sample(rng);
            if x > floor {
                return x;
            }
        }
        // Pathological parameters: fall back to the floor plus the mean offset.
        floor + self.std_dev.max(f64::MIN_POSITIVE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn exponential_mean_converges() {
        let mut rng = rng();
        let d = Exponential::with_mean(45.0);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 45.0).abs() < 1.0, "sample mean {mean}");
    }

    #[test]
    fn exponential_is_nonnegative_and_memoryless_shape() {
        let mut rng = rng();
        let d = Exponential::with_mean(1.0);
        let samples: Vec<f64> = (0..100_000).map(|_| d.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&x| x >= 0.0));
        // P(X > 1) should be ≈ e^{-1} ≈ 0.368.
        let frac = samples.iter().filter(|&&x| x > 1.0).count() as f64 / samples.len() as f64;
        assert!((frac - 0.368).abs() < 0.01, "tail fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_bad_mean() {
        let _ = Exponential::with_mean(0.0);
    }

    #[test]
    fn normal_moments_converge() {
        let mut rng = rng();
        let d = Normal::new(365.0, 41.0);
        let n = 200_000usize;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 365.0).abs() < 1.0, "mean {mean}");
        assert!((var.sqrt() - 41.0).abs() < 1.0, "std {}", var.sqrt());
    }

    #[test]
    fn sample_above_respects_floor() {
        let mut rng = rng();
        let d = Normal::new(1.0, 5.0);
        for _ in 0..1_000 {
            assert!(d.sample_above(&mut rng, 0.0) > 0.0);
        }
    }

    #[test]
    fn accessors() {
        assert_eq!(Exponential::with_mean(2.0).mean(), 2.0);
        let n = Normal::new(1.0, 2.0);
        assert_eq!(n.mean(), 1.0);
        assert_eq!(n.std_dev(), 2.0);
    }
}
