//! The published component failure and repair data (Table I) and how each
//! failure type interrupts rack input power.

use serde::{Deserialize, Serialize};

/// A component in the critical power path to a rack (Fig 8b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Component {
    /// The utility feed.
    Utility,
    /// Substation / medium-voltage switch gear.
    SubMsg,
    /// Main switch board.
    Msb,
    /// Switch board.
    Sb,
    /// Reactor power panel.
    Rpp,
}

impl core::fmt::Display for Component {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let name = match self {
            Component::Utility => "utility",
            Component::SubMsg => "sub/MSG",
            Component::Msb => "MSB",
            Component::Sb => "SB",
            Component::Rpp => "RPP",
        };
        f.write_str(name)
    }
}

/// The four ways rack input power fails (§IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureType {
    /// Utility power failure: an open transition to the generator and a
    /// second one back once the utility returns.
    UtilityFailure,
    /// Corrective maintenance: open transitions to and from the reserve
    /// device around the repair.
    CorrectiveMaintenance,
    /// Annual preventive maintenance: same two open transitions, but on a
    /// yearly (normally distributed) schedule.
    AnnualMaintenance,
    /// A real power outage: the rack is dark until the repair completes.
    PowerOutage,
}

impl FailureType {
    /// Whether this failure type keeps rack input power out for the whole
    /// repair (a power outage) rather than only during two brief open
    /// transitions at its boundaries.
    #[must_use]
    pub fn is_outage(self) -> bool {
        matches!(self, FailureType::PowerOutage)
    }

    /// Whether inter-event times follow the annual (normal) schedule instead
    /// of the exponential MTBF clock.
    #[must_use]
    pub fn is_annual(self) -> bool {
        matches!(self, FailureType::AnnualMaintenance)
    }
}

impl core::fmt::Display for FailureType {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let name = match self {
            FailureType::UtilityFailure => "utility failure",
            FailureType::CorrectiveMaintenance => "corrective maintenance",
            FailureType::AnnualMaintenance => "annual maintenance",
            FailureType::PowerOutage => "power outage",
        };
        f.write_str(name)
    }
}

/// One row of Table I: a component × failure-type renewal process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureSource {
    /// The failing component.
    pub component: Component,
    /// How it fails.
    pub failure_type: FailureType,
    /// Mean time between failures, in hours.
    pub mtbf_hours: f64,
    /// Mean time to repair, in hours.
    pub mttr_hours: f64,
}

impl FailureSource {
    /// Expected events per year implied by the MTBF.
    #[must_use]
    pub fn events_per_year(&self) -> f64 {
        8_760.0 / self.mtbf_hours
    }
}

/// Mean open-transition duration (§IV-A): 45 seconds, exponentially
/// distributed.
pub const MEAN_OPEN_TRANSITION_SECS: f64 = 45.0;

/// Standard deviation of the annual-maintenance schedule: 41 days (from the
/// paper's maintenance dataset), around a one-year mean.
pub const ANNUAL_MAINTENANCE_STD_DAYS: f64 = 41.0;

/// The eleven rows of Table I.
#[must_use]
pub fn standard_sources() -> Vec<FailureSource> {
    use Component::*;
    use FailureType::*;
    vec![
        FailureSource {
            component: Utility,
            failure_type: UtilityFailure,
            mtbf_hours: 6.39e3,
            mttr_hours: 0.6,
        },
        FailureSource {
            component: SubMsg,
            failure_type: CorrectiveMaintenance,
            mtbf_hours: 5.87e4,
            mttr_hours: 8.0,
        },
        FailureSource {
            component: Msb,
            failure_type: CorrectiveMaintenance,
            mtbf_hours: 4.12e4,
            mttr_hours: 20.2,
        },
        FailureSource {
            component: Sb,
            failure_type: CorrectiveMaintenance,
            mtbf_hours: 1.51e5,
            mttr_hours: 8.7,
        },
        FailureSource {
            component: Rpp,
            failure_type: CorrectiveMaintenance,
            mtbf_hours: 6.31e5,
            mttr_hours: 5.5,
        },
        FailureSource {
            component: Msb,
            failure_type: AnnualMaintenance,
            mtbf_hours: 8.76e3,
            mttr_hours: 12.8,
        },
        FailureSource {
            component: Sb,
            failure_type: AnnualMaintenance,
            mtbf_hours: 8.76e3,
            mttr_hours: 7.4,
        },
        FailureSource {
            component: Rpp,
            failure_type: AnnualMaintenance,
            mtbf_hours: 8.76e3,
            mttr_hours: 9.9,
        },
        FailureSource {
            component: Msb,
            failure_type: PowerOutage,
            mtbf_hours: 2.93e5,
            mttr_hours: 6.4,
        },
        FailureSource {
            component: Sb,
            failure_type: PowerOutage,
            mtbf_hours: 5.20e5,
            mttr_hours: 4.6,
        },
        FailureSource {
            component: Rpp,
            failure_type: PowerOutage,
            mtbf_hours: 6.25e6,
            mttr_hours: 10.9,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_eleven_rows() {
        assert_eq!(standard_sources().len(), 11);
    }

    #[test]
    fn annual_maintenance_is_yearly() {
        for src in standard_sources()
            .iter()
            .filter(|s| s.failure_type.is_annual())
        {
            assert_eq!(src.mtbf_hours, 8_760.0);
            assert!((src.events_per_year() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn utility_failure_rate_matches_ieee_row() {
        let utility = standard_sources()
            .into_iter()
            .find(|s| s.component == Component::Utility)
            .unwrap();
        assert_eq!(utility.failure_type, FailureType::UtilityFailure);
        // ≈1.37 failures per year.
        assert!((utility.events_per_year() - 1.371).abs() < 0.01);
        assert_eq!(utility.mttr_hours, 0.6);
    }

    #[test]
    fn outage_classification() {
        assert!(FailureType::PowerOutage.is_outage());
        assert!(!FailureType::UtilityFailure.is_outage());
        assert!(!FailureType::AnnualMaintenance.is_outage());
        assert!(!FailureType::CorrectiveMaintenance.is_outage());
    }

    #[test]
    fn outages_are_much_rarer_than_open_transitions() {
        let sources = standard_sources();
        let outage_rate: f64 = sources
            .iter()
            .filter(|s| s.failure_type.is_outage())
            .map(FailureSource::events_per_year)
            .sum();
        let ot_rate: f64 = sources
            .iter()
            .filter(|s| !s.failure_type.is_outage())
            .map(FailureSource::events_per_year)
            .sum();
        assert!(outage_rate < 0.1, "outage rate {outage_rate}/yr");
        assert!(ot_rate > 4.0, "open-transition event rate {ot_rate}/yr");
    }

    #[test]
    fn display_names() {
        assert_eq!(Component::SubMsg.to_string(), "sub/MSG");
        assert_eq!(FailureType::PowerOutage.to_string(), "power outage");
    }
}
