//! The Monte-Carlo availability-of-redundancy engine (Fig 9a).

use rand::rngs::StdRng;
use rand::SeedableRng;

use recharge_telemetry::{tcounter, tspan};
use recharge_units::Seconds;

use crate::dist::{Exponential, Normal};
use crate::table1::{FailureSource, ANNUAL_MAINTENANCE_STD_DAYS, MEAN_OPEN_TRANSITION_SECS};

/// Monte-Carlo sampler of rack-input-power-loss events.
///
/// Each Table I row is treated as an independent renewal process in a series
/// system (any component failing interrupts the rack's input power, Fig 8b):
///
/// * Exponential inter-failure times (MTBF mean), except annual maintenance
///   which is normally distributed with a one-year mean and a 41-day σ.
/// * Utility failures and maintenances produce **two open transitions** —
///   one when the event begins and one when it ends MTTR later — because the
///   rack rides to and from the alternate source; input power is present (and
///   the battery can recharge) in between.
/// * Power outages keep the rack dark for the whole exponentially distributed
///   repair time.
/// * Open-transition durations are exponential with a 45-second mean.
#[derive(Debug, Clone)]
pub struct AorSimulation {
    sources: Vec<FailureSource>,
    mean_ot: Exponential,
}

impl AorSimulation {
    /// Creates a simulation over the given failure sources with the standard
    /// 45-second mean open transition.
    #[must_use]
    pub fn new(sources: Vec<FailureSource>) -> Self {
        AorSimulation {
            sources,
            mean_ot: Exponential::with_mean(MEAN_OPEN_TRANSITION_SECS),
        }
    }

    /// Overrides the mean open-transition duration (seconds).
    #[must_use]
    pub fn with_mean_open_transition(mut self, mean: Seconds) -> Self {
        self.mean_ot = Exponential::with_mean(mean.as_secs());
        self
    }

    /// Samples `horizon_years` of failures with a fixed seed and reduces them
    /// to a merged power-loss timeline.
    #[must_use]
    pub fn run(&self, horizon_years: f64, seed: u64) -> PowerLossTimeline {
        assert!(horizon_years > 0.0, "horizon must be positive");
        let horizon = Seconds::from_years(horizon_years).as_secs();
        let mut rng = StdRng::seed_from_u64(seed);
        let annual_gap = Normal::new(
            Seconds::from_years(1.0).as_secs(),
            Seconds::from_days(ANNUAL_MAINTENANCE_STD_DAYS).as_secs(),
        );

        let mut intervals: Vec<(f64, f64)> = Vec::new();
        for source in &self.sources {
            let mttr = Seconds::from_hours(source.mttr_hours).as_secs();
            let gap = Exponential::with_mean(Seconds::from_hours(source.mtbf_hours).as_secs());
            let mut t = 0.0;
            loop {
                let step = if source.failure_type.is_annual() {
                    annual_gap.sample_above(&mut rng, Seconds::from_days(1.0).as_secs())
                } else {
                    gap.sample(&mut rng)
                };
                t += step;
                if t >= horizon {
                    break;
                }
                if source.failure_type.is_outage() {
                    let repair = Exponential::with_mean(mttr).sample(&mut rng);
                    intervals.push((t, t + repair));
                    t += repair;
                } else {
                    // Transition out, repair on the alternate source,
                    // transition back.
                    let ot1 = self.mean_ot.sample(&mut rng);
                    intervals.push((t, t + ot1));
                    let repair = Exponential::with_mean(mttr).sample(&mut rng);
                    let back = t + ot1 + repair;
                    let ot2 = self.mean_ot.sample(&mut rng);
                    intervals.push((back, back + ot2));
                    t = back + ot2;
                }
            }
        }

        PowerLossTimeline::from_intervals(intervals, horizon)
    }

    /// Samples `trials` independent blocks of `years_per_trial` each and
    /// concatenates them into one timeline spanning
    /// `trials × years_per_trial` years.
    ///
    /// Trial `t` runs on its own RNG stream derived from `(seed, t)` via a
    /// SplitMix64 mix, and its intervals are shifted by `t` block lengths
    /// before the final merge — so the result is a pure function of
    /// `(years_per_trial, trials, seed)`, independent of execution order.
    /// [`run_trials_parallel`](Self::run_trials_parallel) exploits exactly
    /// that: it produces a **bit-identical** timeline on any thread count.
    #[must_use]
    pub fn run_trials(&self, years_per_trial: f64, trials: usize, seed: u64) -> PowerLossTimeline {
        let _trace = recharge_telemetry::env_trace_scope();
        tcounter!("mc.trials").add(trials as u64);
        let timelines: Vec<PowerLossTimeline> = (0..trials)
            .map(|t| {
                let _span = tspan!("mc.trial", "reliability");
                self.run(years_per_trial, trial_seed(seed, t))
            })
            .collect();
        let _concat_span = tspan!("mc.concat", "reliability");
        concat_timelines(&timelines, years_per_trial)
    }

    /// The parallel twin of [`run_trials`](Self::run_trials): distributes the
    /// trials over `threads` OS threads and returns a timeline bit-identical
    /// to the serial result.
    ///
    /// Each thread owns a disjoint chunk of the per-trial result slots, so
    /// no synchronization is needed beyond the scope join. `threads` is
    /// clamped to `[1, trials]`.
    #[must_use]
    pub fn run_trials_parallel(
        &self,
        years_per_trial: f64,
        trials: usize,
        seed: u64,
        threads: usize,
    ) -> PowerLossTimeline {
        let _trace = recharge_telemetry::env_trace_scope();
        let threads = threads.clamp(1, trials.max(1));
        tcounter!("mc.trials").add(trials as u64);
        let mut results: Vec<Option<PowerLossTimeline>> = vec![None; trials];
        let chunk = trials.div_ceil(threads);
        std::thread::scope(|scope| {
            for (c, slots) in results.chunks_mut(chunk.max(1)).enumerate() {
                let sim = &*self;
                scope.spawn(move || {
                    for (offset, slot) in slots.iter_mut().enumerate() {
                        let t = c * chunk + offset;
                        let _span = tspan!("mc.trial", "reliability");
                        *slot = Some(sim.run(years_per_trial, trial_seed(seed, t)));
                    }
                });
            }
        });
        let timelines: Vec<PowerLossTimeline> = results
            .into_iter()
            .map(|r| r.expect("all trials ran"))
            .collect();
        let _concat_span = tspan!("mc.concat", "reliability");
        concat_timelines(&timelines, years_per_trial)
    }

    /// Convenience: evaluates AOR at each charging time over one shared event
    /// stream, producing the Fig 9(a) curve.
    #[must_use]
    pub fn aor_curve(&self, horizon_years: f64, seed: u64, charge_times: &[Seconds]) -> AorCurve {
        let timeline = self.run(horizon_years, seed);
        let points = charge_times
            .iter()
            .map(|&ct| (ct, timeline.aor(ct)))
            .collect();
        AorCurve { points }
    }
}

/// Derives the RNG seed for trial `index` from the caller's master seed.
///
/// Two SplitMix64 steps over the (seed, index) pair decorrelate neighbouring
/// trial streams; the mapping is pure, so serial and parallel execution see
/// identical streams.
#[must_use]
pub fn trial_seed(seed: u64, index: usize) -> u64 {
    let mut state = seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let first = rand::splitmix64(&mut state);
    first ^ rand::splitmix64(&mut state)
}

/// Concatenates per-trial timelines (each spanning `years_per_trial`) into a
/// single timeline over the combined horizon, shifting trial `t`'s intervals
/// by `t` block lengths.
fn concat_timelines(timelines: &[PowerLossTimeline], years_per_trial: f64) -> PowerLossTimeline {
    let block = Seconds::from_years(years_per_trial).as_secs();
    let horizon = block * timelines.len().max(1) as f64;
    let intervals: Vec<(f64, f64)> = timelines
        .iter()
        .enumerate()
        .flat_map(|(t, tl)| {
            let shift = block * t as f64;
            tl.intervals()
                .iter()
                .map(move |&(s, e)| (s + shift, e + shift))
        })
        .collect();
    PowerLossTimeline::from_intervals(intervals, horizon)
}

/// A merged, sorted set of rack-input-power-loss intervals over a horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerLossTimeline {
    /// Non-overlapping `(start, end)` seconds, sorted ascending.
    intervals: Vec<(f64, f64)>,
    horizon: f64,
}

impl PowerLossTimeline {
    /// Builds a timeline from raw (possibly overlapping) intervals, clipping
    /// to `[0, horizon]` and merging.
    #[must_use]
    pub fn from_intervals(mut intervals: Vec<(f64, f64)>, horizon: f64) -> Self {
        intervals.retain(|&(s, e)| e > s && s < horizon);
        for iv in &mut intervals {
            iv.0 = iv.0.max(0.0);
            iv.1 = iv.1.min(horizon);
        }
        intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
        let merged = Self::merge(&intervals);
        PowerLossTimeline {
            intervals: merged,
            horizon,
        }
    }

    fn merge(sorted: &[(f64, f64)]) -> Vec<(f64, f64)> {
        let mut merged: Vec<(f64, f64)> = Vec::with_capacity(sorted.len());
        for &(s, e) in sorted {
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        merged
    }

    /// The simulated horizon in seconds.
    #[must_use]
    pub fn horizon_secs(&self) -> f64 {
        self.horizon
    }

    /// The merged power-loss intervals, sorted ascending, as
    /// `(start, end)` seconds.
    #[must_use]
    pub fn intervals(&self) -> &[(f64, f64)] {
        &self.intervals
    }

    /// Number of distinct power-loss episodes.
    #[must_use]
    pub fn episode_count(&self) -> usize {
        self.intervals.len()
    }

    /// Power-loss episodes per simulated year.
    #[must_use]
    pub fn episodes_per_year(&self) -> f64 {
        self.episode_count() as f64 / (self.horizon / Seconds::from_years(1.0).as_secs())
    }

    /// Total time input power was out, in seconds.
    #[must_use]
    pub fn total_loss_secs(&self) -> f64 {
        self.intervals.iter().map(|&(s, e)| e - s).sum()
    }

    /// Availability of redundancy for a battery that needs `charge_time` to
    /// recharge after every input-power restoration.
    ///
    /// The battery is "not fully charged" during each power-loss interval and
    /// for `charge_time` afterwards; overlapping extensions merge (a second
    /// event during recharge does not double-count).
    #[must_use]
    pub fn aor(&self, charge_time: Seconds) -> f64 {
        let ct = charge_time.as_secs().max(0.0);
        let extended: Vec<(f64, f64)> = self
            .intervals
            .iter()
            .map(|&(s, e)| (s, (e + ct).min(self.horizon)))
            .collect();
        let merged = Self::merge(&extended);
        let lost: f64 = merged.iter().map(|&(s, e)| e - s).sum();
        1.0 - lost / self.horizon
    }

    /// Expected hours per year without redundancy at the given charge time —
    /// the "Loss of redundancy (hr/year)" column of Table II.
    #[must_use]
    pub fn loss_of_redundancy_hours_per_year(&self, charge_time: Seconds) -> f64 {
        (1.0 - self.aor(charge_time)) * 8_760.0
    }
}

/// The AOR-versus-charging-time curve of Fig 9(a).
#[derive(Debug, Clone, PartialEq)]
pub struct AorCurve {
    /// `(charging time, AOR)` points in query order.
    pub points: Vec<(Seconds, f64)>,
}

impl AorCurve {
    /// Linear-regression slope of AOR per minute of charging time (negative).
    #[must_use]
    pub fn slope_per_minute(&self) -> f64 {
        let n = self.points.len() as f64;
        if self.points.len() < 2 {
            return 0.0;
        }
        let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
        for &(t, aor) in &self.points {
            let x = t.as_minutes();
            sx += x;
            sy += aor;
            sxx += x * x;
            sxy += x * aor;
        }
        (n * sxy - sx * sy) / (n * sxx - sx * sx)
    }

    /// Maximum absolute deviation of the points from their own linear fit —
    /// small values confirm the paper's observation that AOR decreases
    /// *linearly* with charging time.
    #[must_use]
    pub fn max_deviation_from_linear(&self) -> f64 {
        if self.points.len() < 2 {
            return 0.0;
        }
        let slope = self.slope_per_minute();
        let n = self.points.len() as f64;
        let mean_x = self.points.iter().map(|(t, _)| t.as_minutes()).sum::<f64>() / n;
        let mean_y = self.points.iter().map(|(_, a)| a).sum::<f64>() / n;
        self.points
            .iter()
            .map(|&(t, a)| (a - (mean_y + slope * (t.as_minutes() - mean_x))).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table1::standard_sources;

    fn timeline() -> PowerLossTimeline {
        AorSimulation::new(standard_sources()).run(5_000.0, 7)
    }

    #[test]
    fn episode_rate_matches_hand_calculation() {
        // Utility ≈1.37/yr ×2 OTs + corrective ≈0.43/yr ×2 + annual 3/yr ×2 +
        // outages ≈0.05/yr ⇒ ≈9.7 episodes/yr.
        let t = timeline();
        let rate = t.episodes_per_year();
        assert!((8.0..11.5).contains(&rate), "episodes/yr = {rate:.2}");
    }

    #[test]
    fn aor_is_monotone_decreasing_in_charge_time() {
        let t = timeline();
        let mut prev = 1.0;
        for minutes in [0.0, 15.0, 30.0, 45.0, 60.0, 75.0, 90.0] {
            let aor = t.aor(Seconds::from_minutes(minutes));
            assert!(aor <= prev, "AOR increased at {minutes} min");
            assert!(aor > 0.99, "AOR {aor} suspiciously low");
            prev = aor;
        }
    }

    #[test]
    fn table2_aor_anchors() {
        // Table II: 30 min → 99.94%, 60 min → 99.90%, 90 min → 99.85%.
        let t = AorSimulation::new(standard_sources()).run(20_000.0, 11);
        let aor30 = t.aor(Seconds::from_minutes(30.0));
        let aor60 = t.aor(Seconds::from_minutes(60.0));
        let aor90 = t.aor(Seconds::from_minutes(90.0));
        assert!((0.9990..0.9997).contains(&aor30), "AOR(30) = {aor30:.5}");
        assert!((0.9985..0.9994).contains(&aor60), "AOR(60) = {aor60:.5}");
        assert!((0.9978..0.9990).contains(&aor90), "AOR(90) = {aor90:.5}");
    }

    #[test]
    fn aor_curve_is_close_to_linear() {
        let sim = AorSimulation::new(standard_sources());
        let times: Vec<Seconds> = (0..=9)
            .map(|i| Seconds::from_minutes(f64::from(i) * 10.0))
            .collect();
        let curve = sim.aor_curve(10_000.0, 3, &times);
        assert!(curve.slope_per_minute() < 0.0);
        assert!(
            curve.max_deviation_from_linear() < 2e-4,
            "deviation {}",
            curve.max_deviation_from_linear()
        );
    }

    #[test]
    fn merging_handles_overlaps() {
        let t = PowerLossTimeline::from_intervals(
            vec![(10.0, 20.0), (15.0, 30.0), (40.0, 50.0), (50.0, 55.0)],
            100.0,
        );
        assert_eq!(t.episode_count(), 2);
        assert!((t.total_loss_secs() - 35.0).abs() < 1e-9);
        // A 5 s charge time bridges nothing new between 30→40.
        assert!((t.aor(Seconds::new(5.0)) - (1.0 - 45.0 / 100.0)).abs() < 1e-9);
    }

    #[test]
    fn clipping_to_horizon() {
        let t = PowerLossTimeline::from_intervals(vec![(-5.0, 10.0), (95.0, 200.0)], 100.0);
        assert!((t.total_loss_secs() - 15.0).abs() < 1e-9);
        // Charge time extension cannot run past the horizon.
        assert!(t.aor(Seconds::new(1_000.0)) >= 0.0);
    }

    #[test]
    fn determinism_under_fixed_seed() {
        let sim = AorSimulation::new(standard_sources());
        let a = sim.run(500.0, 99);
        let b = sim.run(500.0, 99);
        assert_eq!(a, b);
        let c = sim.run(500.0, 100);
        assert_ne!(a, c);
    }

    #[test]
    fn loss_of_redundancy_matches_table2_column() {
        let t = AorSimulation::new(standard_sources()).run(20_000.0, 11);
        // Table II pairs 99.94% with 5.26 h/yr: the identity (1−AOR)·8760.
        let hours = t.loss_of_redundancy_hours_per_year(Seconds::from_minutes(30.0));
        let aor = t.aor(Seconds::from_minutes(30.0));
        assert!((hours - (1.0 - aor) * 8_760.0).abs() < 1e-9);
        assert!((2.0..9.0).contains(&hours), "LoR(30min) = {hours:.2} h/yr");
    }

    #[test]
    fn parallel_trials_are_bit_identical_to_serial() {
        let sim = AorSimulation::new(standard_sources());
        let serial = sim.run_trials(100.0, 12, 42);
        for threads in [1, 2, 3, 5, 12, 64] {
            let parallel = sim.run_trials_parallel(100.0, 12, 42, threads);
            assert_eq!(serial, parallel, "diverged at {threads} threads");
        }
    }

    #[test]
    fn trials_statistics_match_single_stream() {
        // Chopping the horizon into independent trials must not bias the
        // long-run episode rate or AOR (edge effects are O(1/block)).
        let sim = AorSimulation::new(standard_sources());
        let t = sim.run_trials(500.0, 10, 7);
        assert!(
            (8.0..11.5).contains(&t.episodes_per_year()),
            "{}",
            t.episodes_per_year()
        );
        let aor30 = t.aor(Seconds::from_minutes(30.0));
        assert!((0.998..0.99995).contains(&aor30), "AOR(30) = {aor30:.5}");
        assert!((t.horizon_secs() - Seconds::from_years(5_000.0).as_secs()).abs() < 1.0);
    }

    #[test]
    fn trial_seeds_are_decorrelated() {
        let s: Vec<u64> = (0..64).map(|i| trial_seed(9, i)).collect();
        let mut unique = s.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), s.len(), "colliding trial seeds");
        // A different master seed shifts every stream.
        assert!((0..64).all(|i| trial_seed(10, i) != s[i]));
    }

    #[test]
    fn custom_open_transition_mean() {
        let sim =
            AorSimulation::new(standard_sources()).with_mean_open_transition(Seconds::new(5.0));
        let t = sim.run(2_000.0, 5);
        // Shorter OTs reduce raw loss time but episodes stay similar.
        assert!((8.0..11.5).contains(&t.episodes_per_year()));
    }
}
