//! Facade crate re-exporting the full `recharge` workspace API.
//!
//! See the individual crates for details; `recharge::prelude` pulls in the
//! most commonly used types.

#![forbid(unsafe_code)]

pub use recharge_battery as battery;
pub use recharge_core as core;
pub use recharge_dynamo as dynamo;
pub use recharge_net as net;
pub use recharge_power as power;
pub use recharge_reliability as reliability;
pub use recharge_sim as sim;
pub use recharge_telemetry as telemetry;
pub use recharge_trace as trace;
pub use recharge_units as units;

/// Commonly used types, one `use` away.
pub mod prelude {
    pub use recharge_units::{
        AmpereHours, Amperes, BbuId, Coulombs, DeviceId, Dod, Fraction, Joules, Ohms, Priority,
        RackId, Seconds, SimTime, Soc, Volts, Watts,
    };
}
