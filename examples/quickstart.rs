//! Quickstart: one rack rides an open transition and charges back under the
//! variable charger, then under a coordinated 1 A override.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use recharge::battery::{BbuParams, ChargePolicy, RackBatterySystem};
use recharge::prelude::*;

fn main() {
    // An Open Rack V2 battery shelf: six BBUs, variable (Eq. 1) charger.
    let mut rack = RackBatterySystem::new(BbuParams::production(), ChargePolicy::Variable);
    println!(
        "rack battery shelf: {} BBUs, fully charged = {}",
        rack.bbu_count(),
        rack.is_redundant()
    );

    // A 60-second open transition while the rack draws 6.3 kW.
    let it_load = Watts::from_kilowatts(6.3);
    rack.input_power_lost();
    rack.step(it_load, Seconds::new(60.0));
    rack.input_power_restored();
    println!(
        "after a 60 s open transition: DOD = {:.1}%, automatic setpoint = {}",
        rack.event_dod().as_percent(),
        rack.setpoint()
    );

    // Charge back, logging every five minutes.
    let mut elapsed = Seconds::ZERO;
    while !rack.is_redundant() {
        let report = rack.step(it_load, Seconds::new(1.0));
        if (elapsed.as_secs() as u64).is_multiple_of(300) {
            println!(
                "t+{:>4.1} min  recharge power {:>7.1} W  SoC {:>5.1}%",
                elapsed.as_minutes(),
                report.recharge_power.as_watts(),
                rack.soc().value() * 100.0
            );
        }
        elapsed += Seconds::new(1.0);
    }
    println!(
        "fully charged after {:.1} min at the automatic setpoint",
        elapsed.as_minutes()
    );

    // The same event, but a Dynamo controller overrides the charger to the
    // 1 A hardware floor (what coordination does to a low-priority rack).
    let mut throttled = RackBatterySystem::new(BbuParams::production(), ChargePolicy::Variable);
    throttled.input_power_lost();
    throttled.step(it_load, Seconds::new(60.0));
    throttled.input_power_restored();
    throttled.set_override(Amperes::MIN_CHARGE);
    let mut elapsed = Seconds::ZERO;
    while !throttled.is_redundant() {
        throttled.step(it_load, Seconds::new(1.0));
        elapsed += Seconds::new(1.0);
    }
    println!(
        "throttled to 1 A, the same charge takes {:.1} min",
        elapsed.as_minutes()
    );
}
