//! The RPC mesh's degraded modes, tick by tick: four racks recharge behind a
//! real loopback TCP server while the controller is partitioned away
//! mid-charge, falls back to standalone charging, and rejoins on heal.
//!
//! ```text
//! cargo run --example rpc_mesh
//! ```

use recharge::dynamo::{Controller, ControllerConfig, FleetBackend, SimRackAgent, Strategy};
use recharge::net::{FaultPlan, Partition, RpcFleetBackend, RpcMeshConfig};
use recharge::prelude::*;

fn main() {
    // Four racks ride out a 60 s open transition before the mesh comes up.
    let mut agents: Vec<SimRackAgent> = (0..4u32)
        .map(|i| {
            SimRackAgent::builder(RackId::new(i), Priority::ALL[(i % 3) as usize])
                .offered_load(Watts::from_kilowatts(6.0))
                .build()
        })
        .collect();
    for a in &mut agents {
        a.set_input_power(false);
    }
    for a in &mut agents {
        a.step(Seconds::new(60.0));
    }
    for a in &mut agents {
        a.set_input_power(true);
    }

    // Cut the controller away for ticks [120, 240): with the default
    // 30-tick coordination lease, every rack falls standalone around tick
    // 150 and rejoins at the first contact after 240.
    let mesh =
        RpcMeshConfig::with_fault(FaultPlan::partitions_only(vec![Partition::all(120, 240)]));
    let mut backend = RpcFleetBackend::spawn(agents, &mesh).expect("spawning the mesh");
    println!("mesh up on {:?}\n", backend.bus().endpoint());

    let mut controller = Controller::new(
        ControllerConfig::new(DeviceId::new(0), Watts::from_kilowatts(190.0)),
        Strategy::PriorityAware,
    );

    let load = |_: RackId, _: usize| Watts::from_kilowatts(6.0);
    let mut coordinated_last = usize::MAX;
    for s in 0..300u32 {
        backend.step_schedule(Seconds::new(1.0), &[true], &load);
        controller.tick(SimTime::from_secs(f64::from(s)), backend.bus_mut());

        let coordinated = (0..4u32)
            .filter(|&i| backend.host().is_coordinated(RackId::new(i)))
            .count();
        if coordinated != coordinated_last {
            let (overridden, standalone_current) = backend.host().with_agents(|agents| {
                (
                    agents
                        .iter()
                        .filter(|a| a.battery().bbu().charger().override_current().is_some())
                        .count(),
                    agents[0].battery().setpoint(),
                )
            });
            println!(
                "tick {s:>3}: {coordinated}/4 coordinated, {overridden}/4 overridden, \
                 rack-0 setpoint {standalone_current}"
            );
            coordinated_last = coordinated;
        }
    }

    println!(
        "\nafter heal: {} commanded currents, partition transparent to the run",
        controller.commanded_currents().len()
    );
}
