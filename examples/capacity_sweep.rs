//! Capacity sweep: how far can the MSB limit shrink before charging-time
//! SLAs start failing, under priority-aware versus global coordination?
//! (The Fig 14 question, as a what-if tool.)
//!
//! ```text
//! cargo run --release --example capacity_sweep [medium|high]
//! ```

use recharge::dynamo::Strategy;
use recharge::prelude::*;
use recharge::sim::{DischargeLevel, Scenario};

fn main() {
    let discharge = match std::env::args().nth(1).as_deref() {
        Some("high") => DischargeLevel::High,
        _ => DischargeLevel::Medium,
    };

    println!("limit (MW) | priority-aware P1/P2/P3 met | global P1/P2/P3 met");
    for step in 0..=8 {
        let limit_mw = 2.6 - 0.05 * f64::from(step);
        let mut cells = Vec::new();
        for strategy in [Strategy::PriorityAware, Strategy::Global] {
            let metrics = Scenario::paper_msb(99)
                .power_limit(Watts::from_megawatts(limit_mw))
                .strategy(strategy)
                .discharge(discharge)
                .build()
                .run();
            cells.push(format!(
                "{:>3}/{:>3}/{:>3}",
                metrics.sla_summary(Priority::P1).met,
                metrics.sla_summary(Priority::P2).met,
                metrics.sla_summary(Priority::P3).met,
            ));
        }
        println!(
            "   {limit_mw:.2}    |        {}          |      {}",
            cells[0], cells[1]
        );
    }
    println!("\n(89 P1 / 142 P2 / 85 P3 racks; open transition at the diurnal peak)");
}
