//! Reliability planning: derive charging-time SLAs from availability-of-
//! redundancy targets, as §IV-A / Table II do.
//!
//! ```text
//! cargo run --release --example reliability_planning
//! ```

use recharge::core::SlaTable;
use recharge::prelude::*;
use recharge::reliability::{table1, AorSimulation};

fn main() {
    // Sample 20,000 years of rack-input-power failures from Table I.
    let sim = AorSimulation::new(table1::standard_sources());
    let timeline = sim.run(20_000.0, 42);
    println!(
        "{:.1} power-loss episodes per rack-year; {:.1} h of raw input-power loss per year",
        timeline.episodes_per_year(),
        timeline.total_loss_secs() / timeline.horizon_secs() * 8_760.0,
    );

    // Fig 9(a): AOR falls linearly with battery charging time.
    println!("\ncharging time → availability of redundancy:");
    for minutes in [0.0, 15.0, 30.0, 45.0, 60.0, 75.0, 90.0] {
        let aor = timeline.aor(Seconds::from_minutes(minutes));
        println!(
            "  {minutes:>4.0} min → AOR {:.4}%  ({:.2} h/yr without redundancy)",
            aor * 100.0,
            (1.0 - aor) * 8_760.0
        );
    }

    // Table II: check the published SLA ↔ AOR correspondence.
    let sla = SlaTable::table2();
    println!("\nTable II cross-check:");
    for priority in [Priority::P1, Priority::P2, Priority::P3] {
        let budget = sla.charge_time_budget(priority);
        let achieved = timeline.aor(budget);
        println!(
            "  {priority}: target {:.2}% at {:>2.0} min SLA → simulated {:.4}%  ({})",
            sla.aor_target(priority) * 100.0,
            budget.as_minutes(),
            achieved * 100.0,
            if achieved >= sla.aor_target(priority) - 2e-4 {
                "OK"
            } else {
                "MISS"
            },
        );
    }
}
