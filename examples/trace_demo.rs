//! End-to-end telemetry demo: runs a small sharded scenario with tracing
//! enabled, then parses the Chrome-trace file it produced and prints a span
//! summary plus the metrics snapshot.
//!
//! ```text
//! RECHARGE_TRACE=trace.json cargo run --release --example trace_demo
//! ```
//!
//! When `RECHARGE_TRACE` is unset the demo defaults it to
//! `trace_demo.json` in the current directory. Open the file in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing` to see controller-tick
//! phases, sim ticks, and shard steps on their worker threads.

use std::collections::BTreeMap;

use recharge::dynamo::Strategy;
use recharge::sim::{DischargeLevel, Scenario};
use recharge::telemetry;
use recharge::units::{Seconds, Watts};

fn main() {
    let trace_path = match telemetry::export::env_trace_path() {
        Some(path) => path,
        None => {
            let default = std::path::PathBuf::from("trace_demo.json");
            std::env::set_var(telemetry::export::TRACE_ENV_VAR, &default);
            default
        }
    };

    // A small but fully featured run: sharded backend (so shard.step and
    // shard.cache_refresh spans appear) under the priority-aware controller.
    // FleetSimulation::run sees RECHARGE_TRACE, enables telemetry, and writes
    // the Chrome trace on completion.
    let metrics = Scenario::row(3, 2, 2, 7)
        .power_limit(Watts::from_kilowatts(190.0))
        .strategy(Strategy::PriorityAware)
        .discharge(DischargeLevel::Low)
        .tick(Seconds::new(1.0))
        .max_horizon(Seconds::from_hours(2.5))
        .shards(2)
        .build()
        .run();

    println!(
        "run: {} racks charged, {} met SLA, peak draw {:.1} kW (limit {:.1} kW), tripped: {}",
        metrics.rack_outcomes.len(),
        metrics.total_sla_met(),
        metrics.max_total_draw.as_kilowatts(),
        metrics.power_limit.as_kilowatts(),
        metrics.breaker_tripped,
    );

    // Round-trip the exported trace through the bundled JSON parser and
    // aggregate complete ("X") events by span name.
    let raw = std::fs::read_to_string(&trace_path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", trace_path.display()));
    let doc = telemetry::json::parse(&raw).expect("trace file must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .expect("trace must contain a traceEvents array");
    assert!(!events.is_empty(), "trace contains no events");

    let mut by_name: BTreeMap<String, (u64, f64)> = BTreeMap::new();
    for event in events {
        let ph = event.get("ph").and_then(|p| p.as_str()).unwrap_or("");
        if ph != "X" {
            continue;
        }
        let name = event
            .get("name")
            .and_then(|n| n.as_str())
            .unwrap_or("?")
            .to_owned();
        let dur_us = event.get("dur").and_then(|d| d.as_num()).unwrap_or(0.0);
        assert!(dur_us >= 0.0, "negative span duration in trace");
        let entry = by_name.entry(name).or_insert((0, 0.0));
        entry.0 += 1;
        entry.1 += dur_us;
    }

    println!(
        "\ntrace: {} events in {} ({} distinct spans)",
        events.len(),
        trace_path.display(),
        by_name.len()
    );
    let mut rows: Vec<(&String, &(u64, f64))> = by_name.iter().collect();
    rows.sort_by(|a, b| b.1 .1.total_cmp(&a.1 .1));
    println!(
        "{:<24} {:>8} {:>12} {:>10}",
        "span", "count", "total ms", "mean µs"
    );
    for (name, &(count, total_us)) in rows {
        println!(
            "{name:<24} {count:>8} {:>12.3} {:>10.2}",
            total_us / 1e3,
            total_us / count.max(1) as f64
        );
    }

    println!("\nmetrics snapshot:\n{}", telemetry::snapshot().to_json());
}
