//! Suite-scale hierarchy: leaf controllers per RPP and upper monitors per
//! SB/MSB, driving a threaded agent fleet — the deployed two-level shape of
//! §IV-C, with a constraint injected at SB level where only an upper monitor
//! can see it.
//!
//! ```text
//! cargo run --release --example suite_hierarchy
//! ```

use recharge::dynamo::{AgentBus, HierarchicalControl, SimRackAgent, Strategy, ThreadedFleet};
use recharge::power::facebook;
use recharge::prelude::*;

fn main() {
    // A small MSB: 56 racks in rows of 4 across four SBs.
    let plan = facebook::single_msb_with_row_size(56, 4);
    let agents: Vec<SimRackAgent> = plan
        .racks
        .iter()
        .map(|&rack| {
            SimRackAgent::builder(rack, Priority::ALL[(rack.index() % 3) as usize])
                .offered_load(Watts::from_kilowatts(6.2))
                .build()
        })
        .collect();

    // Agents live on four worker threads behind a telemetry snapshot.
    let mut fleet = ThreadedFleet::spawn(agents, 4);
    let mut control = HierarchicalControl::from_topology(&plan.topology, Strategy::PriorityAware);
    println!(
        "control tree: {} leaf controllers (RPPs), {} upper monitors (SBs + MSB)",
        control.leaf_count(),
        control.upper_count()
    );

    // A 90-second open transition over the whole MSB.
    fleet.step_all(Seconds::new(90.0), |_| Watts::from_kilowatts(6.2), false);
    fleet.step_all(Seconds::new(1.0), |_| Watts::from_kilowatts(6.2), true);

    let mut total_capped = Watts::ZERO;
    for s in 0..3_600u32 {
        total_capped += control.tick(SimTime::from_secs(f64::from(s)), &mut fleet);
        fleet.step_all(Seconds::new(1.0), |_| Watts::from_kilowatts(6.2), true);
        if s % 600 == 0 {
            let recharge: Watts = fleet
                .racks()
                .iter()
                .filter_map(|&r| fleet.read(r))
                .map(|reading| reading.recharge_power)
                .sum();
            println!(
                "t+{:>2} min  fleet recharge power {:>7.1} kW",
                s / 60,
                recharge.as_kilowatts()
            );
        }
        let all_done = fleet
            .racks()
            .iter()
            .filter_map(|&r| fleet.read(r))
            .all(|reading| !reading.is_charging());
        if all_done && s > 10 {
            println!(
                "all batteries recharged after {:.0} min",
                f64::from(s) / 60.0
            );
            // One more interval so the controllers observe the completions
            // and clear their overrides.
            control.tick(SimTime::from_secs(f64::from(s) + 1.0), &mut fleet);
            break;
        }
    }
    println!(
        "server power capped along the way: {:.1} kW",
        total_capped.as_kilowatts()
    );

    let commanded = control.commanded_currents();
    println!(
        "racks still under coordination at exit: {}",
        commanded.len()
    );
    let _agents = fleet.into_agents(); // clean worker shutdown
}
