//! Maintenance day: an MSB-level open transition on the paper's 316-rack
//! evaluation fleet, comparing the three charger deployments (§V-B, Fig 13).
//!
//! ```text
//! cargo run --release --example maintenance_day
//! ```

use recharge::battery::ChargePolicy;
use recharge::dynamo::Strategy;
use recharge::prelude::*;
use recharge::sim::{DischargeLevel, Scenario};

fn main() {
    let limit = Watts::from_megawatts(2.3); // a constrained maintenance window

    for (name, strategy, policy) in [
        (
            "original 5 A charger ",
            Strategy::Uncoordinated,
            ChargePolicy::Original,
        ),
        (
            "variable charger     ",
            Strategy::Uncoordinated,
            ChargePolicy::Variable,
        ),
        (
            "priority-aware       ",
            Strategy::PriorityAware,
            ChargePolicy::Variable,
        ),
    ] {
        let metrics = Scenario::paper_msb(7)
            .power_limit(limit)
            .strategy(strategy)
            .charge_policy(policy)
            .discharge(DischargeLevel::Medium)
            .build()
            .run();

        println!(
            "{name}  peak draw {:>6.3} MW (limit {:.1})  spike {:>4.0} kW  max capping {:>5.1} kW  \
             SLA met {:>3}/{}",
            metrics.max_total_draw.as_megawatts(),
            limit.as_megawatts(),
            metrics.spike_magnitude().as_kilowatts(),
            metrics.max_capped_power.as_kilowatts(),
            metrics.total_sla_met(),
            metrics.rack_outcomes.len(),
        );
        for priority in [Priority::P1, Priority::P2, Priority::P3] {
            let summary = metrics.sla_summary(priority);
            println!(
                "    {priority}: {}/{} racks met their charging-time SLA",
                summary.met, summary.total
            );
        }
    }
}
