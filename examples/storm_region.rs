//! Storm over a region: replay case study I (Fig 2) — a utility blip makes
//! three data centers' batteries recharge simultaneously — then show what the
//! variable charger and coordination would have done to the same event.
//!
//! ```text
//! cargo run --release --example storm_region
//! ```

use recharge::battery::ChargePolicy;
use recharge::dynamo::Strategy;
use recharge::prelude::*;
use recharge::sim::{DischargeLevel, Scenario};

fn main() {
    // A scaled stand-in for the affected fleet (≈31 MW of IT load): 1,224
    // racks at 1/4 scale, results multiplied back up.
    let racks = 1_224;
    let scale = 4_896.0 / f64::from(racks);
    let per = (racks / 3) as usize;

    for (name, strategy, policy) in [
        (
            "original charger (as in 2019)",
            Strategy::Uncoordinated,
            ChargePolicy::Original,
        ),
        (
            "variable charger             ",
            Strategy::Uncoordinated,
            ChargePolicy::Variable,
        ),
        (
            "coordinated priority-aware   ",
            Strategy::PriorityAware,
            ChargePolicy::Variable,
        ),
    ] {
        let metrics = Scenario::paper_msb(2)
            .priority_counts(per, per, racks as usize - 2 * per)
            .power_limit(Watts::from_megawatts(100.0)) // regional: observe, don't clip
            .strategy(strategy)
            .charge_policy(policy)
            .discharge(DischargeLevel::Custom(0.25))
            .build()
            .run();

        let affected = metrics.it_load_before_ot * scale;
        let spike = metrics.spike_magnitude() * scale;
        println!(
            "{name}  affected load {:>5.1} MW  recharge spike +{:>4.2} MW ({:>4.1}% of the region's 61.6 MW)",
            affected.as_megawatts(),
            spike.as_megawatts(),
            spike.as_watts() / 61.6e6 * 100.0,
        );
    }

    println!("\npaper: the 2019 event spiked +9.3 MW (≈15%) and Dynamo had to cap servers;");
    println!(
        "the variable charger cuts that by ≈60%, and coordination shapes it to fit any budget."
    );
}
