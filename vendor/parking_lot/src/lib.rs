//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API (the
//! distinguishing surface this workspace relies on: `lock()`/`read()`/
//! `write()` returning guards directly). A poisoned std lock means a panic
//! already happened under the lock; matching `parking_lot`, we keep going
//! with the inner data rather than propagating a `PoisonError`.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Poison-free mutex (API subset of `parking_lot::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Returns a mutable reference to the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Poison-free reader-writer lock (API subset of `parking_lot::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Returns a mutable reference to the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};
    use std::sync::Arc;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_allows_concurrent_reads_and_exclusive_writes() {
        let lock = Arc::new(RwLock::new(vec![1, 2, 3]));
        {
            let a = lock.read();
            let b = lock.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        lock.write().push(4);
        assert_eq!(lock.read().len(), 4);
    }

    #[test]
    fn shared_across_threads() {
        let lock = Arc::new(RwLock::new(0u64));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let lock = Arc::clone(&lock);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        *lock.write() += 1;
                    }
                });
            }
        });
        assert_eq!(*lock.read(), 4000);
    }
}
