//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be fetched. This crate reimplements the subset the workspace's
//! property tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`],
//! * [`Strategy`] with `prop_map`, numeric range strategies, tuple
//!   strategies, [`collection::vec`], and [`bool::ANY`].
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **Minimal shrinking.** On failure the runner greedily re-runs smaller
//!   inputs before panicking: integer ranges shrink toward their lower bound
//!   by halving deltas, float ranges by the same bounded bisection in
//!   order-preserving bit space (toward the range low, at most 64 candidates
//!   per step), booleans toward `false`, tuples component-wise,
//!   `collection::vec` by element removal (respecting the size lower bound)
//!   and element-wise shrinking, and `prop_filter` forwards candidates its
//!   predicate accepts. `prop_map` outputs do **not** shrink (mapping is
//!   not invertible without upstream's value trees) — the original failing
//!   input is then reported as-is.
//! * **No regression-file replay.** `.proptest-regressions` seeds encode
//!   upstream's internal RNG state and cannot be replayed here; known
//!   regressions are instead pinned as explicit unit tests next to the
//!   property (see `tests/properties.rs::regression_*`).
//! * **Deterministic seeding.** Cases derive from a fixed per-test seed (the
//!   hash of the test name), overridable via `PROPTEST_RNG_SEED`, so CI runs
//!   are reproducible.

pub use rand::rngs::StdRng;
use rand::Rng;

/// Runner configuration (stand-in for `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum ratio of rejected (assumed-away) to accepted cases.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` successful cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            max_global_rejects: 1024,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig::with_cases(256)
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` filtered this input out; it does not count as a case.
    Reject,
    /// A `prop_assert!` failed.
    Fail(String),
}

/// Per-case result type the [`proptest!`] macro's bodies return.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of random values (stand-in for `proptest::strategy::Strategy`).
///
/// Upstream strategies produce value *trees* to support shrinking; this
/// stand-in produces plain values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Proposes strictly "smaller" variants of a failing value, most
    /// aggressive first. The runner re-runs candidates greedily and keeps the
    /// smallest one that still fails. The default — no candidates — disables
    /// shrinking for the strategy.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Filters generated values; kept cheap by resampling (no shrinking).
    fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        (**self).new_value(rng)
    }
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn new_value(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 10000 consecutive samples");
    }
    fn shrink(&self, value: &S::Value) -> Vec<S::Value> {
        self.inner
            .shrink(value)
            .into_iter()
            .filter(|v| (self.f)(v))
            .collect()
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Integer-range shrink candidates: the low bound first (most aggressive),
/// then `value - delta` for halving deltas down to `value - 1` — a bisection
/// toward the smallest failing value.
macro_rules! int_shrink_candidates {
    ($low:expr, $value:expr) => {{
        let low = $low;
        let value = $value;
        let mut out = Vec::new();
        if value > low {
            out.push(low);
            let mut delta = (value - low) / 2;
            while delta > 0 {
                out.push(value - delta);
                delta /= 2;
            }
        }
        out
    }};
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_shrink_candidates!(self.start, *value)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_shrink_candidates!(*self.start(), *value)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Order-preserving `f64 → u64` mapping over the finite floats: negative
/// values map below positive ones and `a < b ⇔ ordered(a) < ordered(b)`, so
/// integer arithmetic on the image bisects the float line.
fn f64_ordered_bits(x: f64) -> u64 {
    let bits = x.to_bits();
    if bits & (1 << 63) != 0 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// Inverse of [`f64_ordered_bits`].
fn f64_from_ordered_bits(ordered: u64) -> f64 {
    if ordered & (1 << 63) != 0 {
        f64::from_bits(ordered & !(1 << 63))
    } else {
        f64::from_bits(!ordered)
    }
}

/// Float-range shrink candidates, mirroring the integer bisection: the range
/// low first (most aggressive), then `value − delta` for halving deltas —
/// computed in ordered-bit space, where every halving step is well defined
/// and strictly below `value`. At most 64 candidates (one per bit of delta).
fn float_shrink_candidates(low: f64, value: f64) -> Vec<f64> {
    if !low.is_finite() || !value.is_finite() || value <= low {
        return Vec::new();
    }
    let low_bits = f64_ordered_bits(low);
    let value_bits = f64_ordered_bits(value);
    let mut out = vec![low];
    let mut delta = (value_bits - low_bits) / 2;
    while delta > 0 {
        out.push(f64_from_ordered_bits(value_bits - delta));
        delta /= 2;
    }
    out
}

// Float ranges bisect toward the range low in ordered-bit space. Note the
// helpers above are f64-specific; instantiate this macro for another float
// width only after widening them.
macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                float_shrink_candidates(self.start, *value)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                float_shrink_candidates(*self.start(), *value)
            }
        }
    )*};
}

impl_float_range_strategy!(f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident . $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone),+
        {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = candidate;
                        out.push(next);
                    }
                )+
                out
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Collection strategies (stand-in for `proptest::collection`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Bounds accepted by [`vec`].
    pub trait SizeRange {
        /// Samples a length from the bound.
        fn sample_len(&self, rng: &mut StdRng) -> usize;

        /// The smallest length the bound admits; shrinking never removes
        /// elements below it.
        fn min_len(&self) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
        fn min_len(&self) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
        fn min_len(&self) -> usize {
            self.start
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
        fn min_len(&self) -> usize {
            *self.start()
        }
    }

    /// A strategy for `Vec`s whose elements come from `element` and whose
    /// length comes from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S, impl SizeRange> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            // Structural first: drop each element in turn while the size
            // bound still admits the shorter vector.
            if value.len() > self.size.min_len() {
                for i in 0..value.len() {
                    let mut next = value.clone();
                    next.remove(i);
                    out.push(next);
                }
            }
            // Then element-wise: shrink each element in place.
            for (i, elem) in value.iter().enumerate() {
                for candidate in self.element.shrink(elem) {
                    let mut next = value.clone();
                    next[i] = candidate;
                    out.push(next);
                }
            }
            out
        }
    }
}

/// Boolean strategies (stand-in for `proptest::bool`).
pub mod bool {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// A strategy yielding `true` and `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn new_value(&self, rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
        fn shrink(&self, value: &bool) -> Vec<bool> {
            if *value {
                vec![false]
            } else {
                Vec::new()
            }
        }
    }
}

/// Test-runner plumbing used by the [`proptest!`] macro expansion.
pub mod test_runner {
    pub use super::{ProptestConfig as Config, TestCaseError, TestCaseResult};

    /// Derives the base RNG seed for a test: reproducible per test name,
    /// overridable via `PROPTEST_RNG_SEED`.
    #[must_use]
    pub fn base_seed(test_name: &str) -> u64 {
        if let Ok(seed) = std::env::var("PROPTEST_RNG_SEED") {
            if let Ok(seed) = seed.parse::<u64>() {
                return seed;
            }
        }
        // FNV-1a over the test name.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x1_0000_0000_01b3);
        }
        hash
    }

    /// Runs `case` until `config.cases` successes, panicking on the first
    /// failure with the offending input's `Debug` rendering.
    ///
    /// Legacy entry point that samples inside the case closure; it cannot
    /// shrink because the runner never sees the strategy. The [`proptest!`]
    /// macro expands to [`run_with_strategy`] instead.
    ///
    /// [`proptest!`]: crate::proptest
    pub fn run<A: core::fmt::Debug>(
        config: &Config,
        test_name: &str,
        mut case: impl FnMut(&mut rand::rngs::StdRng) -> (A, TestCaseResult),
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(base_seed(test_name));
        let mut successes = 0u32;
        let mut rejects = 0u32;
        while successes < config.cases {
            let (input, result) = case(&mut rng);
            match result {
                Ok(()) => successes += 1,
                Err(TestCaseError::Reject) => {
                    rejects += 1;
                    assert!(
                        rejects <= config.max_global_rejects,
                        "{test_name}: too many prop_assume! rejections ({rejects})"
                    );
                }
                Err(TestCaseError::Fail(message)) => {
                    panic!(
                        "{test_name}: property failed after {successes} passing case(s): \
                         {message}\ninput: {input:#?}\n(no shrinking: offline proptest stand-in)"
                    );
                }
            }
        }
    }

    /// Upper bound on candidate re-executions during one shrink search, so a
    /// slow property cannot turn a failure into a hang.
    const SHRINK_BUDGET: u32 = 512;

    /// Runs `case` over values drawn from `strategy` until `config.cases`
    /// successes. On the first failure the runner greedily shrinks the input
    /// — re-running [`Strategy::shrink`] candidates and descending into the
    /// first that still fails, within [`SHRINK_BUDGET`] re-executions — and
    /// panics with the smallest failing input found.
    ///
    /// [`Strategy::shrink`]: super::Strategy::shrink
    pub fn run_with_strategy<S: super::Strategy>(
        config: &Config,
        test_name: &str,
        strategy: &S,
        mut case: impl FnMut(S::Value) -> TestCaseResult,
    ) where
        S::Value: Clone + core::fmt::Debug,
    {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(base_seed(test_name));
        let mut successes = 0u32;
        let mut rejects = 0u32;
        while successes < config.cases {
            let input = strategy.new_value(&mut rng);
            match case(input.clone()) {
                Ok(()) => successes += 1,
                Err(TestCaseError::Reject) => {
                    rejects += 1;
                    assert!(
                        rejects <= config.max_global_rejects,
                        "{test_name}: too many prop_assume! rejections ({rejects})"
                    );
                }
                Err(TestCaseError::Fail(message)) => {
                    let (minimal, message, steps) =
                        shrink_failure(strategy, input, message, &mut case);
                    panic!(
                        "{test_name}: property failed after {successes} passing case(s): \
                         {message}\nminimal input ({steps} shrink step(s)): {minimal:#?}"
                    );
                }
            }
        }
    }

    /// Greedy bounded shrink: repeatedly asks the strategy for smaller
    /// candidates and descends into the first one that still fails, until no
    /// candidate fails or the budget runs out. Returns the smallest failing
    /// input, its failure message, and how many descents happened. A
    /// candidate that rejects (`prop_assume!`) counts as passing.
    fn shrink_failure<S: super::Strategy>(
        strategy: &S,
        mut current: S::Value,
        mut message: String,
        case: &mut impl FnMut(S::Value) -> TestCaseResult,
    ) -> (S::Value, String, u32)
    where
        S::Value: Clone,
    {
        let mut steps = 0u32;
        let mut budget = SHRINK_BUDGET;
        'descend: loop {
            for candidate in strategy.shrink(&current) {
                if budget == 0 {
                    break 'descend;
                }
                budget -= 1;
                if let Err(TestCaseError::Fail(msg)) = case(candidate.clone()) {
                    current = candidate;
                    message = msg;
                    steps += 1;
                    continue 'descend;
                }
            }
            break;
        }
        (current, message, steps)
    }
}

/// Everything the tests import (stand-in for `proptest::prelude`).
pub mod prelude {
    /// Module alias so `proptest::collection::vec` resolves through the prelude glob too.
    pub use crate::collection;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Fails the current case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        // Bind before negating: `!(a < b)` on floats trips clippy's
        // neg_cmp_op_on_partial_ord at every call site otherwise.
        let cond: bool = $cond;
        if !cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, $($fmt)*);
    }};
}

/// Rejects the current case (it is resampled, not failed) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests (stand-in for `proptest::proptest!`).
///
/// Supports the upstream form used in this workspace: an optional
/// `#![proptest_config(expr)]` header followed by `#[test] fn name(pat in
/// strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strategy:expr ),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                // A tuple of strategies samples left to right — the same RNG
                // stream the former per-argument sampling produced — and
                // gives the runner one composite strategy to shrink.
                let strategy = ( $( $strategy, )+ );
                $crate::test_runner::run_with_strategy(
                    &config,
                    stringify!($name),
                    &strategy,
                    |( $( $arg, )+ )| -> $crate::TestCaseResult {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0.0f64..=1.0, n in 1usize..10) {
            prop_assert!((0.0..=1.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_lengths_respect_bounds(
            v in crate::collection::vec((0u8..3, 0.0f64..1.0), 1..7),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 7);
            for (p, d) in &v {
                prop_assert!(*p < 3);
                prop_assert!((0.0..1.0).contains(d));
            }
        }

        #[test]
        fn prop_map_applies(doubled in (0u32..100).prop_map(|x| x * 2)) {
            prop_assert_eq!(doubled % 2, 0);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic_with_input() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn inner(x in 0u32..10) {
                prop_assert!(x > 100, "impossible bound on {x}");
            }
        }
        inner();
    }

    #[test]
    fn integer_ranges_shrink_toward_the_low_bound() {
        let s = 0u32..100;
        let candidates = s.shrink(&40);
        assert_eq!(candidates.first(), Some(&0));
        assert!(candidates.contains(&39), "{candidates:?}");
        assert!(candidates.iter().all(|&c| c < 40), "{candidates:?}");
        assert!(s.shrink(&0).is_empty());

        let s = 5i64..=64;
        let candidates = s.shrink(&64);
        assert_eq!(candidates.first(), Some(&5));
        assert!(candidates.contains(&63));
        assert!(candidates.iter().all(|&c| (5..64).contains(&c)));
        assert!(s.shrink(&5).is_empty());
    }

    #[test]
    fn float_ranges_shrink_toward_the_low_bound() {
        let s = 0.0f64..100.0;
        let candidates = s.shrink(&40.0);
        assert_eq!(candidates.first(), Some(&0.0));
        assert!(candidates.len() <= 64, "{}", candidates.len());
        assert!(
            candidates.iter().all(|&c| (0.0..40.0).contains(&c)),
            "{candidates:?}"
        );
        // The gentlest candidate is the previous representable float.
        assert_eq!(
            candidates.last().copied(),
            Some(f64::from_bits(40.0f64.to_bits() - 1))
        );
        assert!(s.shrink(&0.0).is_empty());

        // Negative lows shrink across the sign boundary toward the start.
        let s = -5.0f64..=5.0;
        let candidates = s.shrink(&4.0);
        assert_eq!(candidates.first(), Some(&-5.0));
        assert!(
            candidates.iter().all(|&c| (-5.0..4.0).contains(&c)),
            "{candidates:?}"
        );
        assert!(s.shrink(&-5.0).is_empty());
    }

    #[test]
    fn float_failing_cases_shrink_to_the_boundary() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(16))]
                fn inner(x in 0.0f64..100.0) {
                    prop_assert!(x < 50.0, "x = {x} exceeds the bound");
                }
            }
            inner();
        });
        let payload = result.expect_err("the property must fail");
        let message = payload
            .downcast_ref::<String>()
            .expect("panic carries a formatted message");
        assert!(message.contains("minimal input"), "{message}");
        // The ordered-bit bisection converges onto the smallest failing
        // float (or within the shrink budget's last few ulps of it).
        let x: f64 = message
            .split("x = ")
            .nth(1)
            .and_then(|tail| tail.split(' ').next())
            .expect("message reports the failing input")
            .parse()
            .expect("the reported input is a float");
        assert!((50.0..50.000001).contains(&x), "{message}");
    }

    #[test]
    fn tuples_shrink_one_component_at_a_time() {
        let s = (0u32..10, 0u32..10);
        let candidates = s.shrink(&(4, 6));
        assert!(!candidates.is_empty());
        for (a, b) in &candidates {
            let changed = usize::from(*a != 4) + usize::from(*b != 6);
            assert_eq!(changed, 1, "candidate ({a}, {b}) changed both components");
        }
        assert!(candidates.contains(&(0, 6)));
        assert!(candidates.contains(&(4, 0)));
    }

    #[test]
    fn vecs_shrink_by_removal_and_element_wise() {
        let s = crate::collection::vec(0u32..100, 1..5);
        let candidates = s.shrink(&vec![7, 90]);
        // Removals first, respecting the min length of 1...
        assert!(candidates.contains(&vec![90]));
        assert!(candidates.contains(&vec![7]));
        // ...then element-wise integer shrinks.
        assert!(candidates.contains(&vec![0, 90]));
        assert!(candidates.contains(&vec![7, 0]));
        // A minimum-length vector only shrinks element-wise.
        assert!(s.shrink(&vec![5]).iter().all(|v| v.len() == 1));
    }

    #[test]
    fn filters_only_propose_candidates_their_predicate_accepts() {
        let s = (0u32..100).prop_filter("even", |x| x % 2 == 0);
        let candidates = Strategy::shrink(&s, &40);
        assert!(!candidates.is_empty());
        assert!(candidates.iter().all(|c| c % 2 == 0), "{candidates:?}");
    }

    #[test]
    fn failing_cases_shrink_to_the_boundary() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(16))]
                fn inner(x in 0u32..100) {
                    prop_assert!(x < 50, "x = {x} exceeds the bound");
                }
            }
            inner();
        });
        let payload = result.expect_err("the property must fail");
        let message = payload
            .downcast_ref::<String>()
            .expect("panic carries a formatted message");
        assert!(message.contains("property failed"), "{message}");
        // The greedy bisection lands on the smallest failing input, 50.
        assert!(message.contains("x = 50 exceeds the bound"), "{message}");
        assert!(message.contains("minimal input"), "{message}");
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::test_runner::base_seed;
        assert_eq!(base_seed("abc"), base_seed("abc"));
        assert_ne!(base_seed("abc"), base_seed("abd"));
    }
}
