//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel::{unbounded, Sender, Receiver}` over
//! `std::sync::mpsc`. This workspace uses channels in a
//! single-consumer-per-shard pattern, which mpsc covers; the crossbeam
//! surface kept here is the cloneable `Sender` and the `send`/`recv`
//! `Result` signatures.

/// Multi-producer channels (stand-in for `crossbeam::channel`).
pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// The sending half of an unbounded channel. Cloneable.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a value; fails only if all receivers disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a value arrives; fails once all senders disconnected
        /// and the queue is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Iterates over received values until the channel disconnects.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    /// Creates an unbounded channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn multi_producer_single_consumer() {
        let (tx, rx) = unbounded::<u32>();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || tx.send(i).unwrap())
            })
            .collect();
        drop(tx);
        for h in handles {
            h.join().unwrap();
        }
        let mut got: Vec<u32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn recv_errors_after_disconnect() {
        let (tx, rx) = unbounded::<()>();
        drop(tx);
        assert!(rx.recv().is_err());
    }
}
