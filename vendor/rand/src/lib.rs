//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the real `rand` cannot be
//! fetched. This crate implements the subset of the `rand` 0.8 API the
//! workspace uses — [`Rng::gen_range`], [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`] — over a xoshiro256++ generator seeded through
//! SplitMix64 (the same seeding scheme `rand` uses for its small RNGs).
//!
//! The stream differs from the real `StdRng` (ChaCha12), so absolute sampled
//! values differ from upstream-rand builds; every consumer in this workspace
//! treats the stream as an arbitrary deterministic function of the seed and
//! asserts only statistical or same-seed-equality properties, so the swap is
//! behaviour-preserving at the test level.

/// Raw 64-bit generator interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generator interface (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step: the standard stream-derivation function used to expand a
/// 64-bit seed into generator state. Public so callers can derive independent
/// per-trial seeds (`splitmix64(base ^ trial)`) that match across serial and
/// parallel execution.
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// High-level sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Samples a uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        // 53 high bits → uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Samples uniformly from `[low, high)`; `high` is excluded.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Samples uniformly from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty f64 range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let x = low + u * (high - low);
        // Guard the open bound against rounding when the span is large.
        if x >= high {
            low.max(high - (high - low) * f64::EPSILON)
        } else {
            x
        }
    }

    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "gen_range: empty f64 range");
        let u = rng.next_u64() as f64 * (1.0 / u64::MAX as f64);
        (low + u * (high - low)).clamp(low, high)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty integer range");
                let span = (high as i128 - low as i128) as u128;
                // Rejection sampling over the top 64 bits: unbiased.
                let zone = u128::from(u64::MAX) - (u128::from(u64::MAX) + 1) % span;
                loop {
                    let v = u128::from(rng.next_u64());
                    if v <= zone {
                        return (low as i128 + (v % span) as i128) as $t;
                    }
                }
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty integer range");
                if low == high {
                    return low;
                }
                let span = (high as i128 - low as i128) as u128 + 1;
                let zone = u128::from(u64::MAX) - (u128::from(u64::MAX) + 1) % span;
                loop {
                    let v = u128::from(rng.next_u64());
                    if v <= zone {
                        return (low as i128 + (v % span) as i128) as $t;
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T: SampleUniform> {
    /// Draws one sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Generator implementations (subset of `rand::rngs`).
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
    ///
    /// Not the upstream ChaCha12 `StdRng`; see the crate docs for why that is
    /// acceptable here.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    /// Alias of [`StdRng`]; upstream's `SmallRng` is also a xoshiro variant.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0f64..1.0), b.gen_range(0.0f64..1.0));
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen_range(0.0f64..1.0), c.gen_range(0.0f64..1.0));
    }

    #[test]
    fn f64_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&x));
            let y = rng.gen_range(-2.0f64..=2.0);
            assert!((-2.0..=2.0).contains(&y));
        }
    }

    #[test]
    fn integer_ranges_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 3];
        for _ in 0..1_000 {
            seen[rng.gen_range(0u8..3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v = rng.gen_range(5usize..6);
            assert_eq!(v, 5);
        }
    }

    #[test]
    fn uniform_mean_is_centred() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }
}
