//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset this workspace's benches use — `Criterion`,
//! `bench_function`, `benchmark_group`/`bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros —
//! over a simple warmup-then-measure wall-clock loop. No statistics beyond
//! mean/min; results print to stdout as `name ... time: <mean> (min <min>)`.
//!
//! Knobs (environment variables):
//! * `BENCH_WARMUP_MS` — warmup duration per benchmark (default 100).
//! * `BENCH_MEASURE_MS` — measurement duration per benchmark (default 300).
//! * `BENCH_FILTER` — substring filter on benchmark names (like the real
//!   criterion's CLI positional filter; the first non-flag CLI argument is
//!   honoured too).

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

fn env_ms(name: &str, default_ms: u64) -> Duration {
    let ms = std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_ms);
    Duration::from_millis(ms)
}

/// Formats nanoseconds-per-iteration with criterion-like units.
fn fmt_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Times closures inside a benchmark (stand-in for `criterion::Bencher`).
pub struct Bencher {
    /// Total measured duration, accumulated across timed batches.
    elapsed: Duration,
    /// Number of iterations measured.
    iters: u64,
    /// Best (minimum) single-batch per-iteration time in nanoseconds.
    min_ns: f64,
    warmup: Duration,
    measure: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly: first for the warmup window, then for the
    /// measurement window, recording timing.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warmup: also calibrates the batch size so each timed batch is long
        // enough for Instant resolution but short enough to keep samples.
        let warmup_start = Instant::now();
        let mut batch: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t.elapsed();
            if warmup_start.elapsed() >= self.warmup {
                break;
            }
            if dt < Duration::from_micros(50) {
                batch = batch.saturating_mul(2);
            }
        }

        let measure_start = Instant::now();
        while measure_start.elapsed() < self.measure {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t.elapsed();
            self.elapsed += dt;
            self.iters += batch;
            let per_iter = dt.as_secs_f64() * 1e9 / batch as f64;
            if per_iter < self.min_ns {
                self.min_ns = per_iter;
            }
        }
    }
}

/// The benchmark driver (stand-in for `criterion::Criterion`).
pub struct Criterion {
    warmup: Duration,
    measure: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let filter = std::env::var("BENCH_FILTER")
            .ok()
            .or_else(|| std::env::args().skip(1).find(|a| !a.starts_with('-')));
        Criterion {
            warmup: env_ms("BENCH_WARMUP_MS", 100),
            measure: env_ms("BENCH_MEASURE_MS", 300),
            filter,
        }
    }
}

impl Criterion {
    /// Accepts CLI configuration; the stand-in reads env/args in `default()`.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_named(name, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    fn run_named<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            min_ns: f64::INFINITY,
            warmup: self.warmup,
            measure: self.measure,
        };
        f(&mut bencher);
        if bencher.iters == 0 {
            println!("{name:<40} (no iterations recorded)");
            return;
        }
        let mean_ns = bencher.elapsed.as_secs_f64() * 1e9 / bencher.iters as f64;
        println!(
            "{name:<40} time: {:>12} (min {:>12}, {} iters)",
            fmt_time(mean_ns),
            fmt_time(bencher.min_ns),
            bencher.iters
        );
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id: BenchmarkId = id.into();
        let full = format!("{}/{}", self.name, id.0);
        self.criterion.run_named(&full, f);
        self
    }

    /// Runs one benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id: BenchmarkId = id.into();
        let full = format!("{}/{}", self.name, id.0);
        self.criterion.run_named(&full, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus parameter.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Creates an id like `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId(name.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId(name)
    }
}

/// Bundles benchmark functions into a single runner (stand-in for
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        );
    };
}

/// Generates `main` running the given groups (stand-in for
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_criterion() -> Criterion {
        Criterion {
            warmup: Duration::from_millis(1),
            measure: Duration::from_millis(5),
            filter: None,
        }
    }

    #[test]
    fn bench_function_records_iterations() {
        let mut c = fast_criterion();
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn groups_compose_names() {
        let mut c = fast_criterion();
        let mut group = c.benchmark_group("group");
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3u32, |b, &n| {
            b.iter(|| n * 2);
        });
        group.bench_function("plain", |b| b.iter(|| ()));
        group.finish();
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = fast_criterion();
        c.filter = Some("nomatch".to_string());
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| ());
            ran = true;
        });
        assert!(!ran);
    }

    #[test]
    fn time_formatting_picks_units() {
        assert!(fmt_time(12.0).ends_with("ns"));
        assert!(fmt_time(12_000.0).ends_with("µs"));
        assert!(fmt_time(12_000_000.0).ends_with("ms"));
    }
}
