//! No-op derive macros backing the offline `serde` stand-in.
//!
//! The real traits are blanket-implemented in the `serde` stand-in crate, so
//! the derives only need to *accept* the input (including `#[serde(...)]`
//! helper attributes) and emit nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and emits nothing; the blanket impl in the
/// `serde` stand-in already covers the type.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and emits nothing; the blanket impl in
/// the `serde` stand-in already covers the type.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
