//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this workspace has no network access and no
//! vendored registry, so the real `serde` cannot be fetched. Nothing in the
//! workspace actually serializes at runtime (no `serde_json`/`bincode`
//! consumer exists); the derives are carried on types purely so downstream
//! users *could* enable persistence. This stand-in keeps the derive
//! annotations compiling:
//!
//! * [`Serialize`] / [`Deserialize`] are marker traits blanket-implemented
//!   for every type, so bounds like `T: Serialize` always hold.
//! * The `derive` feature re-exports no-op derive macros from
//!   `serde_derive` that accept (and ignore) `#[serde(...)]` attributes.
//!
//! Swapping the real serde back in requires only restoring the registry
//! dependency in the workspace `Cargo.toml`; no source changes are needed.

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize`; blanket-implemented for all
/// types so derive output and trait bounds compile unchanged.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker counterpart of `serde::Deserialize`; blanket-implemented for all
/// sized types.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Marker counterpart of `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T {}

/// Namespace mirror of `serde::ser`.
pub mod ser {
    pub use crate::Serialize;
}

/// Namespace mirror of `serde::de`.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}
