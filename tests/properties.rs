//! Cross-crate property tests: algorithmic invariants checked against the
//! physical battery model.

use proptest::prelude::*;

use recharge::battery::{BbuPack, BbuParams, ChargeTimeTable};
use recharge::core::{
    assign_global, assign_priority_aware, throttle_on_overload, RackChargeState,
    RechargePowerModel, SlaCurrentPolicy, SLA_MEMO_DOD_BINS,
};
use recharge::dynamo::{FleetBackendKind, SimRackAgent};
use recharge::net::ShardPlan;
use recharge::power::facebook;
use recharge::prelude::*;
use recharge::reliability::{table1, AorSimulation};

/// The shrunken counterexample recorded in `properties.proptest-regressions`
/// for `algorithm1_respects_budget_and_hardware_range`, pinned as a
/// deterministic test: 21 P1 racks at 0% DOD except rack 18 at ≈27.7%, with
/// a 10.04 kW budget that covers the fleet's 1 A floor plus little else.
/// The historical failure came from treating an out-of-span charge-table
/// query (`Err`) like an unattainable SLA (`Ok(None)`) and assigning 5 A.
#[test]
fn pinned_regression_budget_invariant_near_fleet_floor() {
    let policy = SlaCurrentPolicy::production();
    let model = RechargePowerModel::production();
    let racks: Vec<RackChargeState> = (0..21)
        .map(|i| RackChargeState {
            rack: RackId::new(i),
            priority: Priority::P1,
            dod: Dod::new(if i == 18 { 0.2774863304984034 } else { 0.0 }),
        })
        .collect();
    let budget = Watts::from_kilowatts(10.036436199333385);
    let outcome = assign_priority_aware(&racks, budget, &policy, &model);

    let floor = model.rack_power(Amperes::MIN_CHARGE) * racks.len() as f64;
    assert!(
        outcome.total_recharge_power <= budget.max(floor) + Watts::new(1e-6),
        "total {} exceeds cap {}",
        outcome.total_recharge_power,
        budget.max(floor)
    );
    for a in &outcome.assignments {
        assert!(a.current >= Amperes::MIN_CHARGE && a.current <= Amperes::MAX_CHARGE);
    }
    // The shallow racks need exactly the 2 A P1 floor — not 5 A saturation.
    assert_eq!(outcome.assignments[0].current, Amperes::new(2.0));
}

/// `ShardPlan::ByRpp` on the paper's MSB substrate must reproduce the power
/// topology's own RPP rows: `facebook::single_msb` attaches racks to RPPs
/// densely in fleet order, and the sharded mesh's contiguous 14-rack chunks
/// are exactly those rows. Pinned at 28 racks (two full rows) plus the
/// ragged 316-rack paper fleet.
#[test]
fn pinned_by_rpp_sharding_matches_power_topology_rows() {
    for rack_count in [28usize, 316] {
        let plan = facebook::single_msb(rack_count);
        let groups = ShardPlan::ByRpp { racks_per_rpp: 14 }.partition(&plan.racks);
        assert_eq!(groups.len(), plan.rpps.len(), "{rack_count} racks");
        for (group, &rpp) in groups.iter().zip(&plan.rpps) {
            assert_eq!(
                *group,
                plan.topology.racks_under(rpp),
                "shard group diverged from RPP {rpp} ({rack_count} racks)"
            );
        }
    }
}

fn arb_racks(max: usize) -> impl Strategy<Value = Vec<RackChargeState>> {
    proptest::collection::vec((0u8..3, 0.0f64..=1.0), 1..max).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (p, dod))| RackChargeState {
                rack: RackId::new(i as u32),
                priority: Priority::ALL[p as usize],
                dod: Dod::new(dod),
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn algorithm1_respects_budget_and_hardware_range(
        racks in arb_racks(40),
        budget_kw in 0.0f64..60.0,
    ) {
        let policy = SlaCurrentPolicy::production();
        let model = RechargePowerModel::production();
        let budget = Watts::from_kilowatts(budget_kw);
        let outcome = assign_priority_aware(&racks, budget, &policy, &model);

        let floor = model.rack_power(Amperes::MIN_CHARGE) * racks.len() as f64;
        prop_assert!(outcome.total_recharge_power <= budget.max(floor) + Watts::new(1e-6));
        for a in &outcome.assignments {
            prop_assert!(a.current >= Amperes::MIN_CHARGE && a.current <= Amperes::MAX_CHARGE);
        }
    }

    #[test]
    fn algorithm1_dominates_global_for_p1(
        racks in arb_racks(30),
        budget_kw in 0.0f64..40.0,
    ) {
        // Algorithm 1 protects P1 at least as well as the global baseline, up
        // to one boundary rack: the SLA policy plans with a 3% safety margin,
        // so a uniform rate can occasionally satisfy a rack with slightly
        // less power than Algorithm 1 would assign it.
        let policy = SlaCurrentPolicy::production();
        let model = RechargePowerModel::production();
        let budget = Watts::from_kilowatts(budget_kw);
        let aware = assign_priority_aware(&racks, budget, &policy, &model);
        let global = assign_global(&racks, budget, &policy, &model);
        prop_assert!(
            aware.sla_met_count(Some(Priority::P1)) + 1
                >= global.sla_met_count(Some(Priority::P1)),
            "P1: aware {} < global {} beyond the margin slack",
            aware.sla_met_count(Some(Priority::P1)),
            global.sla_met_count(Some(Priority::P1))
        );
    }

    #[test]
    fn throttle_covers_overload_or_reports_residual(
        racks in arb_racks(30),
        overload_kw in 0.0f64..30.0,
    ) {
        let policy = SlaCurrentPolicy::production();
        let model = RechargePowerModel::production();
        let assignments =
            assign_priority_aware(&racks, Watts::from_kilowatts(100.0), &policy, &model)
                .assignments;
        let overload = Watts::from_kilowatts(overload_kw);
        let outcome = throttle_on_overload(&assignments, overload, &policy, &model);
        prop_assert!(
            (outcome.power_shed + outcome.residual_overload - overload).abs()
                <= Watts::new(1e-6)
                || outcome.power_shed >= overload
        );
        // Throttling never raises a current.
        for (after, before) in outcome.assignments.iter().zip(&assignments) {
            prop_assert!(after.current <= before.current);
        }
    }

    #[test]
    fn sla_current_assignment_is_physically_sufficient(
        dod in 0.05f64..=1.0,
        priority_idx in 0u8..3,
    ) {
        // The current the policy assigns must actually charge the physical
        // pack within the SLA whenever the SLA is attainable at 5 A.
        let policy = SlaCurrentPolicy::production();
        let priority = Priority::ALL[priority_idx as usize];
        let dod = Dod::new(dod);
        let current = policy.sla_current(priority, dod);
        let attainable = policy.meets_sla(priority, dod, Amperes::MAX_CHARGE);
        prop_assume!(attainable);

        let mut pack = BbuPack::discharged(BbuParams::production(), dod);
        let time = pack
            .charge_to_full(current, Seconds::new(1.0), 100_000)
            .expect("charge converges");
        let budget = policy.sla().charge_time_budget(priority);
        prop_assert!(
            time <= budget + Seconds::new(60.0),
            "{priority} at {dod}: {:.1} min > {:.1} min budget at {current}",
            time.as_minutes(),
            budget.as_minutes()
        );
    }

    #[test]
    fn charge_time_table_brackets_physical_charge(dod in 0.1f64..=1.0, amps in 1.0f64..=5.0) {
        let table = ChargeTimeTable::production();
        let predicted = table
            .charge_time(Dod::new(dod), Amperes::new(amps))
            .expect("in range");
        let mut pack = BbuPack::discharged(BbuParams::production(), Dod::new(dod));
        let actual = pack
            .charge_to_full(Amperes::new(amps), Seconds::new(1.0), 200_000)
            .expect("charge converges");
        let err = (predicted.as_minutes() - actual.as_minutes()).abs();
        prop_assert!(
            err <= actual.as_minutes() * 0.05 + 1.0,
            "table {:.1} min vs physics {:.1} min",
            predicted.as_minutes(),
            actual.as_minutes()
        );
    }

    #[test]
    fn memoized_sla_current_brackets_exact(
        dod in 0.0f64..=1.0,
        priority_idx in 0u8..3,
    ) {
        // The memo rounds the DOD up to the next of SLA_MEMO_DOD_BINS bin
        // edges: it must never undershoot the exact current, and never exceed
        // what one bin step more discharge would require.
        let policy = SlaCurrentPolicy::production();
        let priority = Priority::ALL[priority_idx as usize];
        let dod = Dod::new(dod);
        let memo = policy.sla_current(priority, dod);
        let exact = policy.sla_current_exact(priority, dod);
        prop_assert!(memo >= exact, "{priority} at {dod}: memo {memo} < exact {exact}");
        let step = 1.0 / SLA_MEMO_DOD_BINS as f64;
        let deeper = policy.sla_current_exact(priority, Dod::new((dod.value() + step).min(1.0)));
        prop_assert!(memo <= deeper, "{priority} at {dod}: memo {memo} > one-bin-deeper {deeper}");
    }

    #[test]
    fn charge_time_is_monotone_in_dod_between_grid_rows(
        dod_lo in 0.0f64..=1.0,
        dod_delta in 0.0f64..=0.049,
        amps in 1.0f64..=5.0,
    ) {
        // The `meets_sla` memo fast-accepts at the DOD bin *above* a query
        // and fast-rejects from the bin *below* it. Both shortcuts are sound
        // only if the interpolated charge time never decreases with DOD —
        // including *between* the table's 5% grid rows, where bilinear
        // interpolation (not a physical simulation) supplies the answer. The
        // delta keeps the pair within one grid spacing, so the pair usually
        // straddles the interior of a cell or a row boundary.
        let table = ChargeTimeTable::production();
        let dod_hi = (dod_lo + dod_delta).min(1.0);
        let current = Amperes::new(amps);
        let shallow = table.charge_time(Dod::new(dod_lo), current).expect("in range");
        let deep = table.charge_time(Dod::new(dod_hi), current).expect("in range");
        prop_assert!(
            shallow.as_minutes() <= deep.as_minutes() + 1e-9,
            "T({dod_lo:.4}, {amps:.2} A) = {:.4} min > T({dod_hi:.4}) = {:.4} min",
            shallow.as_minutes(),
            deep.as_minutes()
        );
    }

    #[test]
    fn parallel_montecarlo_is_bit_identical(
        seed in 0u64..1_000_000,
        trials in 1usize..10,
        threads in 1usize..8,
    ) {
        let sim = AorSimulation::new(table1::standard_sources());
        let serial = sim.run_trials(20.0, trials, seed);
        let parallel = sim.run_trials_parallel(20.0, trials, seed, threads);
        prop_assert!(serial == parallel, "diverged: {trials} trials, {threads} threads");
    }

    #[test]
    fn throttle_is_idempotent(
        racks in arb_racks(30),
        overload_kw in 0.0f64..30.0,
    ) {
        // Re-throttling the output against the uncovered residual is a
        // no-op: either the overload was covered (residual zero) or every
        // rack already sits at the 1 A floor with nothing left to shed.
        let policy = SlaCurrentPolicy::production();
        let model = RechargePowerModel::production();
        let assignments =
            assign_priority_aware(&racks, Watts::from_kilowatts(100.0), &policy, &model)
                .assignments;
        let overload = Watts::from_kilowatts(overload_kw);
        let once = throttle_on_overload(&assignments, overload, &policy, &model);
        let again =
            throttle_on_overload(&once.assignments, once.residual_overload, &policy, &model);
        prop_assert!(again.assignments == once.assignments);
        prop_assert!(again.power_shed == Watts::ZERO);
        prop_assert!(again.residual_overload == once.residual_overload);
    }

    #[test]
    fn shard_partition_assigns_every_rack_exactly_once(
        rack_count in 1usize..200,
        plan_pick in 0u8..3,
        n in 0usize..40,
    ) {
        // Whatever the plan, partitioning is a permutation-free split: every
        // rack lands in exactly one shard, in fleet order, with no shard
        // empty (so no server ever hosts zero racks while another hosts its
        // racks twice).
        let racks: Vec<RackId> = (0..rack_count as u32).map(RackId::new).collect();
        let plan = match plan_pick {
            0 => ShardPlan::Single,
            1 => ShardPlan::Count(n),
            _ => ShardPlan::ByRpp { racks_per_rpp: n.max(1) },
        };
        let groups = plan.partition(&racks);
        let flattened: Vec<RackId> = groups.iter().flatten().copied().collect();
        prop_assert_eq!(&flattened, &racks, "{:?} lost or duplicated racks", plan);
        prop_assert!(
            groups.iter().all(|g| !g.is_empty()),
            "{:?} produced an empty shard for {} racks",
            plan,
            rack_count
        );
    }

    #[test]
    fn by_rpp_sharding_preserves_rpp_grouping(
        rack_count in 1usize..150,
        row_size in 1usize..15,
    ) {
        // The mesh's ByRpp chunks must equal the topology's RPP rows for any
        // fleet size and row width, ragged tail included.
        let plan = facebook::single_msb_with_row_size(rack_count, row_size);
        let groups = ShardPlan::ByRpp { racks_per_rpp: row_size }.partition(&plan.racks);
        prop_assert_eq!(groups.len(), plan.rpps.len());
        for (group, &rpp) in groups.iter().zip(&plan.rpps) {
            prop_assert_eq!(group, &plan.topology.racks_under(rpp));
        }
    }

    #[test]
    fn backend_kind_survives_string_round_trip(kind_pick in 0u8..5, shards in 0usize..100) {
        let kind = match kind_pick {
            0 => FleetBackendKind::Serial,
            1 => FleetBackendKind::Sharded { shards },
            2 => FleetBackendKind::ShardedBatched { shards },
            3 => FleetBackendKind::Soa,
            _ => FleetBackendKind::SoaSharded { shards },
        };
        let text = kind.to_string();
        prop_assert_eq!(text.parse::<FleetBackendKind>(), Ok(kind), "via {:?}", text);
    }

    #[test]
    fn charge_energy_telescopes_with_soc(
        dod in 0.05f64..=1.0,
        schedule in proptest::collection::vec((0.0f64..=5.0, 0.1f64..=10.0), 1..200),
    ) {
        // Cumulative stored energy over an arbitrary charge schedule —
        // including zero-setpoint (postponed) stretches and the terminating
        // taper step — must telescope exactly with ΔSoC × capacity. This is
        // the accounting identity the termination-step fix restores: the
        // final step snaps the remaining sliver into `stored_energy` instead
        // of dropping it.
        let params = BbuParams::production();
        let mut pack = BbuPack::discharged(params, Dod::new(dod));
        let soc_start = pack.soc().value();
        let mut stored = Joules::ZERO;
        for &(amps, dt) in &schedule {
            stored += pack
                .charge_step(Amperes::new(amps), Seconds::new(dt))
                .stored_energy;
        }
        let delta = (pack.soc().value() - soc_start) * params.full_discharge_energy.as_joules();
        prop_assert!(
            (stored.as_joules() - delta).abs() <= delta.abs().max(1.0) * 1e-9,
            "cumulative stored {} J vs ΔSoC energy {} J",
            stored.as_joules(),
            delta
        );
    }

    #[test]
    fn soa_kernel_is_bit_identical_to_object_path(
        rounds in proptest::collection::vec(
            (0u8..6, 0u32..7, 0.5f64..8.0, 0u8..=255),
            1..12,
        ),
    ) {
        // The struct-of-arrays backend must track the object path bit for bit
        // through arbitrary override / postpone / cap command schedules,
        // input-power patterns, and load shapes.
        let agents = || -> Vec<SimRackAgent> {
            (0..7u32)
                .map(|i| {
                    SimRackAgent::builder(RackId::new(i), Priority::ALL[(i % 3) as usize])
                        .offered_load(Watts::from_kilowatts(6.0))
                        .build()
                })
                .collect()
        };
        let mut backends = [
            FleetBackendKind::Serial.build(agents()),
            FleetBackendKind::Soa.build(agents()),
            FleetBackendKind::SoaSharded { shards: 3 }.build(agents()),
        ];
        for (round, &(cmd, rack_pick, kw, power_bits)) in rounds.iter().enumerate() {
            let rack = RackId::new(rack_pick);
            for backend in &mut backends {
                let bus = backend.bus_mut();
                match cmd {
                    0 => bus.set_charge_override(rack, Amperes::new(kw)),
                    1 => bus.clear_charge_override(rack),
                    2 => bus.set_charge_postponed(rack, true),
                    3 => bus.set_charge_postponed(rack, false),
                    4 => bus.cap_servers(rack, Watts::from_kilowatts(kw)),
                    _ => bus.uncap_servers(rack),
                }
            }
            let schedule: Vec<bool> = (0..8).map(|i| power_bits >> i & 1 == 1).collect();
            let load = |r: RackId, i: usize| {
                Watts::from_kilowatts(kw + 0.2 * f64::from(r.index()) + 0.05 * i as f64)
            };
            for backend in &mut backends {
                backend.step_schedule(Seconds::new(5.0), &schedule, &load);
            }
            let reference = backends[0].readings();
            prop_assert_eq!(&backends[1].readings(), &reference, "soa diverged at round {}", round);
            prop_assert_eq!(
                &backends[2].readings(),
                &reference,
                "soa-sharded diverged at round {}",
                round
            );
        }
    }

    #[test]
    fn battery_energy_is_conserved(dod in 0.05f64..=1.0, amps in 1.0f64..=5.0) {
        let params = BbuParams::production();
        let mut pack = BbuPack::discharged(params, Dod::new(dod));
        let mut wall = Joules::ZERO;
        let dt = Seconds::new(1.0);
        let mut guard = 0;
        while !pack.is_fully_charged() {
            let step = pack.charge_step(Amperes::new(amps), dt);
            wall += step.wall_power * dt;
            guard += 1;
            prop_assert!(guard < 200_000, "charge did not converge");
        }
        let stored = params.full_discharge_energy * dod;
        // Wall energy exceeds the stored energy (losses), but not absurdly.
        prop_assert!(wall >= stored, "wall {wall} < stored {stored}");
        prop_assert!(wall <= stored * 2.5, "wall {wall} implausibly above stored {stored}");
    }
}
