//! Failure-injection tests: what happens when the mitigation layers are
//! absent, degraded, or stressed by compound events.

use recharge::battery::{BbuState, ChargePolicy};
use recharge::dynamo::{
    AgentBus, Controller, ControllerConfig, InMemoryBus, RackAgent, SimRackAgent, Strategy,
};
use recharge::prelude::*;
use recharge::sim::{DischargeLevel, Scenario};

fn small_bus(n: usize) -> InMemoryBus<SimRackAgent> {
    let agents = (0..n as u32)
        .map(|i| {
            SimRackAgent::builder(RackId::new(i), Priority::ALL[(i % 3) as usize])
                .offered_load(Watts::from_kilowatts(6.0))
                .build()
        })
        .collect();
    InMemoryBus::new(agents)
}

fn open_transition(bus: &mut InMemoryBus<SimRackAgent>, secs: f64) {
    for a in bus.agents_mut() {
        a.set_input_power(false);
    }
    for a in bus.agents_mut() {
        a.step(Seconds::new(secs));
    }
    for a in bus.agents_mut() {
        a.set_input_power(true);
    }
}

#[test]
fn unmitigated_recharge_spike_trips_the_breaker() {
    // No Dynamo at all: the original charger's spike exceeds 130% of a tight
    // limit for more than 30 s and the breaker opens — the §I failure mode.
    let probe = Scenario::row(2, 2, 2, 3).build().run();
    let tight = probe.it_load_before_ot.as_kilowatts() * 0.85;
    let metrics = Scenario::row(2, 2, 2, 3)
        .power_limit(Watts::from_kilowatts(tight))
        .charge_policy(ChargePolicy::Original)
        .strategy(Strategy::Uncoordinated)
        .discharge(DischargeLevel::Medium)
        .build()
        .without_mitigation()
        .run();
    assert!(
        metrics.breaker_tripped,
        "max draw was {}",
        metrics.max_total_draw
    );
}

#[test]
fn mitigated_run_never_trips_even_when_capping() {
    let probe = Scenario::row(2, 2, 2, 3).build().run();
    let tight = probe.it_load_before_ot.as_kilowatts() * 0.9;
    let metrics = Scenario::row(2, 2, 2, 3)
        .power_limit(Watts::from_kilowatts(tight))
        .charge_policy(ChargePolicy::Original)
        .strategy(Strategy::Uncoordinated)
        .discharge(DischargeLevel::Medium)
        .build()
        .run();
    assert!(!metrics.breaker_tripped);
    assert!(
        metrics.max_capped_power > Watts::ZERO,
        "Dynamo should have capped"
    );
}

#[test]
fn controller_survives_unreachable_agents() {
    let mut bus = small_bus(6);
    bus.disconnect(RackId::new(2));
    bus.disconnect(RackId::new(5));
    let mut controller = Controller::new(
        ControllerConfig::new(DeviceId::new(0), Watts::from_kilowatts(190.0)),
        Strategy::PriorityAware,
    );
    open_transition(&mut bus, 60.0);
    for s in 0..1_800 {
        for a in bus.agents_mut() {
            a.step(Seconds::new(1.0));
        }
        controller.tick(SimTime::from_secs(f64::from(s)), &mut bus);
    }
    // Reachable racks were coordinated and finish; unreachable ones still
    // charge on their local automatic policy.
    for a in bus.agents() {
        assert!(
            matches!(
                a.battery().state(),
                BbuState::FullyCharged | BbuState::Charging
            ),
            "rack {} in state {:?}",
            a.rack(),
            a.battery().state()
        );
    }
}

#[test]
fn second_transition_mid_charge_restarts_coordination() {
    let mut bus = small_bus(4);
    let mut controller = Controller::new(
        ControllerConfig::new(DeviceId::new(0), Watts::from_kilowatts(190.0)),
        Strategy::PriorityAware,
    );
    open_transition(&mut bus, 45.0);
    for s in 0..120 {
        for a in bus.agents_mut() {
            a.step(Seconds::new(1.0));
        }
        controller.tick(SimTime::from_secs(f64::from(s)), &mut bus);
    }
    let dod_after_first: Vec<f64> = bus
        .agents()
        .map(|a| a.battery().event_dod().value())
        .collect();

    // A second, deeper transition before charging completes.
    open_transition(&mut bus, 90.0);
    for s in 120..240 {
        for a in bus.agents_mut() {
            a.step(Seconds::new(1.0));
        }
        controller.tick(SimTime::from_secs(f64::from(s)), &mut bus);
    }
    for (agent, before) in bus.agents().zip(dod_after_first) {
        assert!(
            agent.battery().event_dod().value() > before,
            "second event must re-latch a deeper DOD"
        );
        assert_eq!(agent.battery().state(), BbuState::Charging);
    }
    // The controller issued fresh overrides for the new, deeper event.
    assert_eq!(controller.commanded_currents().len(), 4);
}

#[test]
fn override_during_cv_phase_is_safe() {
    // Throttling a rack that has already tapered into CV must not disturb
    // termination.
    let mut agent = SimRackAgent::builder(RackId::new(0), Priority::P3)
        .offered_load(Watts::from_kilowatts(6.0))
        .build();
    agent.set_input_power(false);
    agent.step(Seconds::new(30.0));
    agent.set_input_power(true);
    // Charge until the wall power confirms the CV taper has begun.
    let mut guard = 0;
    loop {
        agent.step(Seconds::new(1.0));
        let reading = agent.read();
        if !reading.is_charging() || reading.recharge_power < Watts::new(500.0) {
            break;
        }
        guard += 1;
        assert!(guard < 7_200, "never reached CV");
    }
    agent.set_charge_override(Amperes::MIN_CHARGE);
    let mut remaining = 0;
    while agent.read().is_charging() {
        agent.step(Seconds::new(1.0));
        remaining += 1;
        assert!(
            remaining < 7_200,
            "charge did not terminate after CV override"
        );
    }
    assert_eq!(agent.battery().state(), BbuState::FullyCharged);
}

#[test]
fn cap_then_uncap_round_trip_preserves_offered_load() {
    let mut bus = small_bus(3);
    bus.cap_servers(RackId::new(0), Watts::from_kilowatts(3.0));
    assert_eq!(
        bus.read(RackId::new(0)).unwrap().it_load,
        Watts::from_kilowatts(3.0)
    );
    bus.uncap_servers(RackId::new(0));
    assert_eq!(
        bus.read(RackId::new(0)).unwrap().it_load,
        Watts::from_kilowatts(6.0)
    );
    assert_eq!(bus.read(RackId::new(0)).unwrap().capped_power, Watts::ZERO);
}
