//! Failure-injection tests: what happens when the mitigation layers are
//! absent, degraded, or stressed by compound events.

use recharge::battery::{BbuState, ChargePolicy};
use recharge::dynamo::{
    AgentBus, Controller, ControllerConfig, FleetBackend, InMemoryBus, RackAgent, SimRackAgent,
    Strategy,
};
use recharge::net::{FaultPlan, Partition, RpcFleetBackend, RpcMeshConfig};
use recharge::prelude::*;
use recharge::sim::{DischargeLevel, Scenario};

fn small_bus(n: usize) -> InMemoryBus<SimRackAgent> {
    let agents = (0..n as u32)
        .map(|i| {
            SimRackAgent::builder(RackId::new(i), Priority::ALL[(i % 3) as usize])
                .offered_load(Watts::from_kilowatts(6.0))
                .build()
        })
        .collect();
    InMemoryBus::new(agents)
}

fn open_transition(bus: &mut InMemoryBus<SimRackAgent>, secs: f64) {
    for a in bus.agents_mut() {
        a.set_input_power(false);
    }
    for a in bus.agents_mut() {
        a.step(Seconds::new(secs));
    }
    for a in bus.agents_mut() {
        a.set_input_power(true);
    }
}

#[test]
fn unmitigated_recharge_spike_trips_the_breaker() {
    // No Dynamo at all: the original charger's spike exceeds 130% of a tight
    // limit for more than 30 s and the breaker opens — the §I failure mode.
    let probe = Scenario::row(2, 2, 2, 3).build().run();
    let tight = probe.it_load_before_ot.as_kilowatts() * 0.85;
    let metrics = Scenario::row(2, 2, 2, 3)
        .power_limit(Watts::from_kilowatts(tight))
        .charge_policy(ChargePolicy::Original)
        .strategy(Strategy::Uncoordinated)
        .discharge(DischargeLevel::Medium)
        .build()
        .without_mitigation()
        .run();
    assert!(
        metrics.breaker_tripped,
        "max draw was {}",
        metrics.max_total_draw
    );
}

#[test]
fn mitigated_run_never_trips_even_when_capping() {
    let probe = Scenario::row(2, 2, 2, 3).build().run();
    let tight = probe.it_load_before_ot.as_kilowatts() * 0.9;
    let metrics = Scenario::row(2, 2, 2, 3)
        .power_limit(Watts::from_kilowatts(tight))
        .charge_policy(ChargePolicy::Original)
        .strategy(Strategy::Uncoordinated)
        .discharge(DischargeLevel::Medium)
        .build()
        .run();
    assert!(!metrics.breaker_tripped);
    assert!(
        metrics.max_capped_power > Watts::ZERO,
        "Dynamo should have capped"
    );
}

#[test]
fn controller_survives_unreachable_agents() {
    let mut bus = small_bus(6);
    bus.disconnect(RackId::new(2));
    bus.disconnect(RackId::new(5));
    let mut controller = Controller::new(
        ControllerConfig::new(DeviceId::new(0), Watts::from_kilowatts(190.0)),
        Strategy::PriorityAware,
    );
    open_transition(&mut bus, 60.0);
    for s in 0..1_800 {
        for a in bus.agents_mut() {
            a.step(Seconds::new(1.0));
        }
        controller.tick(SimTime::from_secs(f64::from(s)), &mut bus);
    }
    // Reachable racks were coordinated and finish; unreachable ones still
    // charge on their local automatic policy.
    for a in bus.agents() {
        assert!(
            matches!(
                a.battery().state(),
                BbuState::FullyCharged | BbuState::Charging
            ),
            "rack {} in state {:?}",
            a.rack(),
            a.battery().state()
        );
    }
}

#[test]
fn second_transition_mid_charge_restarts_coordination() {
    let mut bus = small_bus(4);
    let mut controller = Controller::new(
        ControllerConfig::new(DeviceId::new(0), Watts::from_kilowatts(190.0)),
        Strategy::PriorityAware,
    );
    open_transition(&mut bus, 45.0);
    for s in 0..120 {
        for a in bus.agents_mut() {
            a.step(Seconds::new(1.0));
        }
        controller.tick(SimTime::from_secs(f64::from(s)), &mut bus);
    }
    let dod_after_first: Vec<f64> = bus
        .agents()
        .map(|a| a.battery().event_dod().value())
        .collect();

    // A second, deeper transition before charging completes.
    open_transition(&mut bus, 90.0);
    for s in 120..240 {
        for a in bus.agents_mut() {
            a.step(Seconds::new(1.0));
        }
        controller.tick(SimTime::from_secs(f64::from(s)), &mut bus);
    }
    for (agent, before) in bus.agents().zip(dod_after_first) {
        assert!(
            agent.battery().event_dod().value() > before,
            "second event must re-latch a deeper DOD"
        );
        assert_eq!(agent.battery().state(), BbuState::Charging);
    }
    // The controller issued fresh overrides for the new, deeper event.
    assert_eq!(controller.commanded_currents().len(), 4);
}

#[test]
fn override_during_cv_phase_is_safe() {
    // Throttling a rack that has already tapered into CV must not disturb
    // termination.
    let mut agent = SimRackAgent::builder(RackId::new(0), Priority::P3)
        .offered_load(Watts::from_kilowatts(6.0))
        .build();
    agent.set_input_power(false);
    agent.step(Seconds::new(30.0));
    agent.set_input_power(true);
    // Charge until the wall power confirms the CV taper has begun.
    let mut guard = 0;
    loop {
        agent.step(Seconds::new(1.0));
        let reading = agent.read();
        if !reading.is_charging() || reading.recharge_power < Watts::new(500.0) {
            break;
        }
        guard += 1;
        assert!(guard < 7_200, "never reached CV");
    }
    agent.set_charge_override(Amperes::MIN_CHARGE);
    let mut remaining = 0;
    while agent.read().is_charging() {
        agent.step(Seconds::new(1.0));
        remaining += 1;
        assert!(
            remaining < 7_200,
            "charge did not terminate after CV override"
        );
    }
    assert_eq!(agent.battery().state(), BbuState::FullyCharged);
}

#[test]
fn controller_partition_during_recharge_falls_back_then_rejoins() {
    // Agents ride out a 60 s open transition before the mesh comes up, so
    // the partition hits them mid-recharge.
    let mut agents: Vec<SimRackAgent> = (0..4u32)
        .map(|i| {
            SimRackAgent::builder(RackId::new(i), Priority::ALL[(i % 3) as usize])
                .offered_load(Watts::from_kilowatts(6.0))
                .build()
        })
        .collect();
    for a in &mut agents {
        a.set_input_power(false);
    }
    for a in &mut agents {
        a.step(Seconds::new(60.0));
    }
    for a in &mut agents {
        a.set_input_power(true);
    }

    // Total controller loss for ticks [120, 240): every rack's coordination
    // lease (30 ticks) expires mid-recharge.
    let mesh =
        RpcMeshConfig::with_fault(FaultPlan::partitions_only(vec![Partition::all(120, 240)]));
    let mut backend = RpcFleetBackend::spawn(agents, &mesh).expect("spawning the mesh");
    let racks: Vec<RackId> = (0..4).map(RackId::new).collect();
    let mut controller = Controller::new(
        ControllerConfig::new(DeviceId::new(0), Watts::from_kilowatts(190.0)),
        Strategy::PriorityAware,
    );

    let load = |_: RackId, _: usize| Watts::from_kilowatts(6.0);
    for s in 0..420u32 {
        backend.step_schedule(Seconds::new(1.0), &[true], &load);
        controller.tick(SimTime::from_secs(f64::from(s)), backend.bus_mut());

        if s == 100 {
            // Before the partition: fully coordinated, every rack under an
            // explicit override.
            assert_eq!(controller.commanded_currents().len(), 4);
            for &rack in &racks {
                assert!(backend.host().is_coordinated(rack), "{rack} not joined");
            }
            backend.host().with_agents(|agents| {
                for a in agents {
                    assert!(a.battery().bbu().charger().override_current().is_some());
                }
            });
        }
        if s == 200 {
            // Deep in the partition, past lease expiry: every rack fell back
            // to standalone and charges on its local automatic policy — the
            // same current the uncoordinated variable charger would pick.
            for &rack in &racks {
                assert!(
                    !backend.host().is_coordinated(rack),
                    "{rack} still coordinated mid-partition"
                );
            }
            backend.host().with_agents(|agents| {
                for a in agents {
                    let battery = a.battery();
                    assert!(a.battery().bbu().charger().override_current().is_none());
                    assert!(!battery.is_postponed());
                    assert_eq!(battery.state(), BbuState::Charging);
                    assert_eq!(
                        battery.setpoint(),
                        ChargePolicy::Variable.automatic_current(battery.event_dod()),
                        "standalone rack must run its local automatic policy"
                    );
                }
            });
        }
    }

    // Healed: every rack rejoined, was re-overridden, and none is left
    // postponed or stuck.
    assert_eq!(controller.commanded_currents().len(), 4);
    for &rack in &racks {
        assert!(backend.host().is_coordinated(rack), "{rack} never rejoined");
    }
    backend.host().with_agents(|agents| {
        for a in agents {
            assert!(
                !a.battery().is_postponed(),
                "rack left postponed after heal"
            );
            assert!(matches!(
                a.battery().state(),
                BbuState::Charging | BbuState::FullyCharged
            ));
            if a.battery().state() == BbuState::Charging {
                assert!(
                    a.battery().bbu().charger().override_current().is_some(),
                    "controller must re-issue overrides after the heal"
                );
            }
        }
    });
}

#[test]
fn single_shard_partition_degrades_only_that_shard() {
    use recharge::net::ShardedRpcFleetBackend;

    // Same shape as the single-server partition test, but over a two-shard
    // mesh (racks [0,1] on shard 0, [2,3] on shard 1) with the partition
    // scoped to shard 0's racks: only that shard's leases may expire; shard
    // 1 must keep its overrides through the whole window.
    let mut agents: Vec<SimRackAgent> = (0..4u32)
        .map(|i| {
            SimRackAgent::builder(RackId::new(i), Priority::ALL[(i % 3) as usize])
                .offered_load(Watts::from_kilowatts(6.0))
                .build()
        })
        .collect();
    for a in &mut agents {
        a.set_input_power(false);
    }
    for a in &mut agents {
        a.step(Seconds::new(60.0));
    }
    for a in &mut agents {
        a.set_input_power(true);
    }

    let shard0_racks: Vec<RackId> = (0..2).map(RackId::new).collect();
    let mesh =
        RpcMeshConfig::shard_count(2).faulted(FaultPlan::partitions_only(vec![Partition::racks(
            120,
            240,
            shard0_racks.clone(),
        )]));
    let mut backend = ShardedRpcFleetBackend::spawn(agents, &mesh, None).expect("spawning");
    let shard1_racks: Vec<RackId> = (2..4).map(RackId::new).collect();
    let mut controller = Controller::new(
        ControllerConfig::new(DeviceId::new(0), Watts::from_kilowatts(190.0)),
        Strategy::PriorityAware,
    );

    let overridden = |backend: &ShardedRpcFleetBackend, rack: RackId| {
        backend
            .with_agent(rack, |a| {
                a.battery().bbu().charger().override_current().is_some()
            })
            .expect("rack hosted")
    };

    let load = |_: RackId, _: usize| Watts::from_kilowatts(6.0);
    for s in 0..420u32 {
        backend.step_schedule(Seconds::new(1.0), &[true], &load);
        controller.tick(SimTime::from_secs(f64::from(s)), backend.bus_mut());

        if s == 100 {
            // Before the partition: both shards fully coordinated.
            assert_eq!(controller.commanded_currents().len(), 4);
            for i in 0..4 {
                let rack = RackId::new(i);
                assert!(backend.is_coordinated(rack), "{rack} not joined");
                assert!(overridden(&backend, rack), "{rack} missing override");
            }
        }
        if s == 200 {
            // Deep in the window, past lease expiry: shard 0 fell back to
            // standalone variable charging...
            for &rack in &shard0_racks {
                assert!(
                    !backend.is_coordinated(rack),
                    "{rack} still coordinated mid-partition"
                );
                backend
                    .with_agent(rack, |a| {
                        let battery = a.battery();
                        assert!(battery.bbu().charger().override_current().is_none());
                        assert!(!battery.is_postponed());
                        assert_eq!(battery.state(), BbuState::Charging);
                        assert_eq!(
                            battery.setpoint(),
                            ChargePolicy::Variable.automatic_current(battery.event_dod()),
                            "standalone rack must run its local automatic policy"
                        );
                    })
                    .expect("rack hosted");
            }
            // ...while shard 1 never missed an override.
            for &rack in &shard1_racks {
                assert!(
                    backend.is_coordinated(rack),
                    "{rack} lost coordination though its shard was healthy"
                );
                assert!(overridden(&backend, rack), "{rack} dropped its override");
            }
        }
        if (120..300).contains(&s) {
            // Throughout the partition *and* the rejoin transient, the
            // healthy shard's racks stay coordinated.
            for &rack in &shard1_racks {
                assert!(backend.is_coordinated(rack), "{rack} flapped at t={s}");
            }
        }
    }

    // Healed: shard 0 rejoined and was re-overridden; nothing left postponed.
    assert_eq!(controller.commanded_currents().len(), 4);
    for i in 0..4 {
        let rack = RackId::new(i);
        assert!(backend.is_coordinated(rack), "{rack} never rejoined");
        backend
            .with_agent(rack, |a| {
                assert!(!a.battery().is_postponed());
                assert!(matches!(
                    a.battery().state(),
                    BbuState::Charging | BbuState::FullyCharged
                ));
                if a.battery().state() == BbuState::Charging {
                    assert!(
                        a.battery().bbu().charger().override_current().is_some(),
                        "controller must re-issue overrides after the heal"
                    );
                }
            })
            .expect("rack hosted");
    }
}

#[test]
fn agent_flap_leaves_no_rack_postponed() {
    // A limit tight enough that the postponing extension engages — 6 racks ×
    // 6 kW IT leaves 2 kW of charging headroom, below the ~2.25 kW the fleet
    // draws even at the 1 A hardware floor — yet loose enough that headroom
    // reappears as chargers taper, so parked racks can legitimately resume.
    let mut bus = small_bus(6);
    let mut controller = Controller::new(
        ControllerConfig::new(DeviceId::new(0), Watts::from_kilowatts(38.0)).with_postponing(),
        Strategy::PriorityAware,
    );
    open_transition(&mut bus, 90.0);

    let mut any_postponed = false;
    let mut done_at = None;
    for s in 0..20_000u32 {
        for a in bus.agents_mut() {
            a.step(Seconds::new(1.0));
        }
        controller.tick(SimTime::from_secs(f64::from(s)), &mut bus);
        any_postponed |= !controller.postponed_racks().is_empty();

        // Two flap cycles, the first one long. Racks 2 and 5 are the P3
        // (lowest-priority) racks the deficit postpones, so at least one
        // flaps *while postponed* — exactly the state nobody can clear on
        // the agent while it is unreachable.
        match s {
            120 => {
                bus.disconnect(RackId::new(2));
                bus.disconnect(RackId::new(5));
            }
            300 => bus.reconnect(RackId::new(2)),
            360 => bus.disconnect(RackId::new(2)),
            420 => {
                bus.reconnect(RackId::new(2));
                bus.reconnect(RackId::new(5));
            }
            _ => {}
        }

        if s > 420
            && bus
                .agents()
                .all(|a| a.battery().state() == BbuState::FullyCharged)
        {
            done_at = Some(s);
            break;
        }
    }

    assert!(
        any_postponed,
        "the tight limit should have postponed at least one rack"
    );
    let done_at = done_at.expect("fleet never finished charging");
    assert!(controller.postponed_racks().is_empty());
    for a in bus.agents() {
        assert!(
            !a.battery().is_postponed(),
            "rack {} left postponed after the flaps healed (t={done_at})",
            a.rack()
        );
    }
}

#[test]
fn cap_then_uncap_round_trip_preserves_offered_load() {
    let mut bus = small_bus(3);
    bus.cap_servers(RackId::new(0), Watts::from_kilowatts(3.0));
    assert_eq!(
        bus.read(RackId::new(0)).unwrap().it_load,
        Watts::from_kilowatts(3.0)
    );
    bus.uncap_servers(RackId::new(0));
    assert_eq!(
        bus.read(RackId::new(0)).unwrap().it_load,
        Watts::from_kilowatts(6.0)
    );
    assert_eq!(bus.read(RackId::new(0)).unwrap().capped_power, Watts::ZERO);
}
