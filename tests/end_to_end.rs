//! End-to-end scenario tests asserting the paper's headline claims on small
//! (debug-friendly) fleets.

use recharge::battery::ChargePolicy;
use recharge::dynamo::Strategy;
use recharge::prelude::*;
use recharge::sim::{DischargeLevel, Scenario};

/// A 9-rack row scenario with the given strategy/limit.
fn row(
    strategy: Strategy,
    limit_kw: f64,
    policy: ChargePolicy,
    discharge: DischargeLevel,
) -> Scenario {
    Scenario::row(3, 3, 3, 11)
        .power_limit(Watts::from_kilowatts(limit_kw))
        .strategy(strategy)
        .charge_policy(policy)
        .discharge(discharge)
}

/// IT load of the row at its diurnal peak, in kW.
fn it_peak_kw() -> f64 {
    let probe = row(
        Strategy::PriorityAware,
        500.0,
        ChargePolicy::Variable,
        DischargeLevel::Low,
    )
    .build()
    .run();
    probe.it_load_before_ot.as_kilowatts()
}

#[test]
fn headline_priority_aware_never_needs_capping() {
    // Fig 13 / Table III: with headroom above the 1 A fleet floor, the
    // coordinated algorithm fits the recharge into the budget; the original
    // charger does not.
    let limit_kw = it_peak_kw() + 4.5; // floor is 9 racks × ≈0.37 kW ≈ 3.4 kW

    for discharge in [
        DischargeLevel::Low,
        DischargeLevel::Medium,
        DischargeLevel::High,
    ] {
        let aware = row(
            Strategy::PriorityAware,
            limit_kw,
            ChargePolicy::Variable,
            discharge,
        )
        .build()
        .run();
        assert_eq!(
            aware.max_capped_power,
            Watts::ZERO,
            "priority-aware capped at {discharge:?} (draw {} vs limit {})",
            aware.max_total_draw,
            aware.power_limit
        );
        assert!(aware.max_total_draw <= aware.power_limit, "{discharge:?}");
        assert!(!aware.breaker_tripped);

        let original = row(
            Strategy::Uncoordinated,
            limit_kw,
            ChargePolicy::Original,
            discharge,
        )
        .build()
        .run();
        assert!(
            original.max_capped_power > Watts::ZERO,
            "original charger must need capping at {discharge:?}"
        );
    }
}

#[test]
fn headline_variable_charger_cuts_spike_by_roughly_60_percent() {
    // §III-B: below 50% DOD the variable charger charges at 2 A vs 5 A.
    let original = row(
        Strategy::Uncoordinated,
        500.0,
        ChargePolicy::Original,
        DischargeLevel::Low,
    )
    .build()
    .run();
    let variable = row(
        Strategy::Uncoordinated,
        500.0,
        ChargePolicy::Variable,
        DischargeLevel::Low,
    )
    .build()
    .run();
    let reduction = 1.0 - variable.spike_magnitude() / original.spike_magnitude();
    assert!(
        (0.45..0.72).contains(&reduction),
        "spike reduction {reduction:.2} should be ≈0.60"
    );
}

#[test]
fn headline_priority_ordering_under_pressure() {
    // Fig 14: when the budget covers some but not all SLA upgrades, the
    // priority-aware algorithm protects P1 first while global starves it.
    // Headroom: the 1 A floor (9 × ≈0.37 kW) plus roughly the three P1
    // upgrades to their ≈3.8 A SLA current at 70% DOD.
    let limit_kw = it_peak_kw() + 7.5;
    let aware = row(
        Strategy::PriorityAware,
        limit_kw,
        ChargePolicy::Variable,
        DischargeLevel::High,
    )
    .build()
    .run();
    let global = row(
        Strategy::Global,
        limit_kw,
        ChargePolicy::Variable,
        DischargeLevel::High,
    )
    .build()
    .run();

    let aware_p1 = aware.sla_summary(Priority::P1);
    let global_p1 = global.sla_summary(Priority::P1);
    assert!(
        aware_p1.met >= global_p1.met,
        "aware {} < global {}",
        aware_p1.met,
        global_p1.met
    );
    assert!(
        aware_p1.met > 0,
        "priority-aware should protect P1 under pressure"
    );

    // And P3 is the sacrificial class under priority-aware coordination.
    let aware_p3 = aware.sla_summary(Priority::P3);
    assert!(
        aware_p1.fraction() >= aware_p3.fraction(),
        "P1 fraction {} should not trail P3 {}",
        aware_p1.fraction(),
        aware_p3.fraction()
    );
}

#[test]
fn all_batteries_eventually_recover_redundancy() {
    // Whatever the coordination does, every battery must reach fully charged
    // within the horizon when the breaker is not starved below the hardware
    // floor.
    let limit_kw = it_peak_kw() + 4.5;
    let metrics = row(
        Strategy::PriorityAware,
        limit_kw,
        ChargePolicy::Variable,
        DischargeLevel::High,
    )
    .build()
    .run();
    for outcome in &metrics.rack_outcomes {
        assert!(
            outcome.charge_duration.is_some(),
            "rack {} never finished charging",
            outcome.rack
        );
    }
    assert_eq!(metrics.rack_outcomes.len(), 9);
}

#[test]
fn sla_outcomes_are_consistent_with_budgets() {
    let metrics = row(
        Strategy::PriorityAware,
        500.0,
        ChargePolicy::Variable,
        DischargeLevel::Medium,
    )
    .build()
    .run();
    for outcome in &metrics.rack_outcomes {
        let budget_min = match outcome.priority {
            Priority::P1 => 30.0,
            Priority::P2 => 60.0,
            Priority::P3 => 90.0,
        };
        if let Some(duration) = outcome.charge_duration {
            assert_eq!(
                outcome.sla_met,
                duration.as_minutes() <= budget_min,
                "inconsistent SLA flag for {:?}",
                outcome
            );
        } else {
            assert!(!outcome.sla_met);
        }
    }
}
