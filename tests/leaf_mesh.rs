//! In-server leaf control over the sharded mesh: wire economy and degraded
//! modes.
//!
//! With `leaf_control`, each shard's server hosts the leaf controller tier:
//! leaf ticks run server-side against the local agents, and the only traffic
//! per control tick is one `TickLeaf` request per shard carrying a power
//! budget down and a [`GroupAggregate`] back. These tests pin that wire
//! economy by counting RPCs, then exercise the per-shard degraded mode and a
//! full scenario run.
//!
//! This is its own integration binary because the frame-count test reads the
//! process-global `net.rpc_calls` counter — a lock serializes the tests, and
//! no other binary shares the process.

use std::sync::{Mutex, MutexGuard, PoisonError};

use recharge::battery::{BbuState, ChargePolicy};
use recharge::dynamo::{FleetBackend, SimRackAgent, Strategy};
use recharge::net::{FaultPlan, LeafControlSpec, Partition, RpcMeshConfig, ShardedRpcFleetBackend};
use recharge::prelude::*;
use recharge::sim::{DischargeLevel, Scenario};

fn telemetry_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn agents(n: u32) -> Vec<SimRackAgent> {
    (0..n)
        .map(|i| {
            SimRackAgent::builder(RackId::new(i), Priority::ALL[(i % 3) as usize])
                .offered_load(Watts::from_kilowatts(6.0))
                .build()
        })
        .collect()
}

fn leaf_spec() -> LeafControlSpec {
    LeafControlSpec {
        limit: Watts::from_kilowatts(190.0),
        strategy: Strategy::PriorityAware,
        allow_postponing: false,
    }
}

fn discharge(agents: &mut [SimRackAgent], secs: f64) {
    for a in agents.iter_mut() {
        a.set_input_power(false);
    }
    for a in agents.iter_mut() {
        a.step(Seconds::new(secs));
    }
    for a in agents.iter_mut() {
        a.set_input_power(true);
    }
}

/// The headline wire-economy claim: in leaf mode a control tick costs
/// exactly one RPC per shard — the `TickLeaf` carrying the budget down and
/// the aggregate back — and the physics steps in between cost zero.
#[test]
fn leaf_control_tick_is_one_rpc_per_shard() {
    let _lock = telemetry_lock();
    recharge_telemetry::set_enabled(true);
    let calls = recharge_telemetry::counter("net.rpc_calls");

    for shards in [2usize, 4] {
        let mut fleet = agents(8);
        discharge(&mut fleet, 60.0);
        let mut backend = ShardedRpcFleetBackend::spawn(
            fleet,
            &RpcMeshConfig::shard_count(shards).with_leaf_control(),
            Some(leaf_spec()),
        )
        .expect("spawn");

        // Counter baseline after spawn (discovery traffic excluded).
        let before = calls.value();
        let load = |_: RackId, _: usize| Watts::from_kilowatts(6.0);
        let control_ticks = 10u32;
        for s in 0..control_ticks {
            // Five physical sub-steps per control tick: no wire traffic.
            backend.step_schedule(Seconds::new(1.0), &[true; 5], &load);
            let _ = backend.readings();
            backend
                .hosted_control_tick(SimTime::from_secs(f64::from(s * 5 + 4)))
                .expect("leaf tick");
        }
        assert_eq!(
            calls.value() - before,
            u64::from(control_ticks) * shards as u64,
            "leaf mode must cost exactly one TickLeaf per shard per control \
             tick ({shards} shards)"
        );
    }
    recharge_telemetry::set_enabled(false);
}

/// Partitioning one shard of a leaf-mode mesh degrades only that shard: its
/// racks fall back to the standalone variable charger while the other
/// shard's leaf keeps coordinating, and the heal re-joins everyone.
#[test]
fn leaf_mode_single_shard_partition_degrades_only_that_shard() {
    let _lock = telemetry_lock();
    let mut fleet = agents(4);
    discharge(&mut fleet, 60.0);

    let shard0_racks: Vec<RackId> = (0..2).map(RackId::new).collect();
    let mesh =
        RpcMeshConfig::shard_count(2)
            .with_leaf_control()
            .faulted(FaultPlan::partitions_only(vec![Partition::racks(
                120,
                240,
                shard0_racks.clone(),
            )]));
    let mut backend =
        ShardedRpcFleetBackend::spawn(fleet, &mesh, Some(leaf_spec())).expect("spawn");
    let shard1_racks: Vec<RackId> = (2..4).map(RackId::new).collect();

    let load = |_: RackId, _: usize| Watts::from_kilowatts(6.0);
    for s in 0..420u32 {
        backend.step_schedule(Seconds::new(1.0), &[true], &load);
        let report = backend
            .hosted_control_tick(SimTime::from_secs(f64::from(s)))
            .expect("leaf tick");
        assert!(report.it_load > Watts::ZERO, "aggregates lost at t={s}");

        if s == 100 {
            for i in 0..4 {
                assert!(backend.is_coordinated(RackId::new(i)), "rack{i} not joined");
            }
        }
        if s == 200 {
            for &rack in &shard0_racks {
                assert!(!backend.is_coordinated(rack), "{rack} still coordinated");
                backend
                    .with_agent(rack, |a| {
                        let battery = a.battery();
                        assert!(battery.bbu().charger().override_current().is_none());
                        assert_eq!(
                            battery.setpoint(),
                            ChargePolicy::Variable.automatic_current(battery.event_dod()),
                            "standalone rack must run its local automatic policy"
                        );
                    })
                    .expect("hosted");
            }
            for &rack in &shard1_racks {
                assert!(backend.is_coordinated(rack), "{rack} lost coordination");
            }
        }
    }

    for i in 0..4 {
        let rack = RackId::new(i);
        assert!(backend.is_coordinated(rack), "{rack} never rejoined");
        backend
            .with_agent(rack, |a| {
                assert!(!a.battery().is_postponed());
                assert!(matches!(
                    a.battery().state(),
                    BbuState::Charging | BbuState::FullyCharged
                ));
            })
            .expect("hosted");
    }
}

/// A full scenario over the leaf-mode mesh: the per-shard leaves plus the
/// headroom re-budgeting must still protect the breaker and meet every
/// Table II SLA.
#[test]
fn leaf_mode_scenario_meets_slas_without_tripping() {
    let _lock = telemetry_lock();
    let metrics = Scenario::row(3, 2, 2, 7)
        .power_limit(Watts::from_kilowatts(190.0))
        .strategy(Strategy::PriorityAware)
        .discharge(DischargeLevel::Low)
        .tick(Seconds::new(1.0))
        .max_horizon(Seconds::from_hours(2.5))
        .control_every(5)
        .rpc(RpcMeshConfig::shard_count(2).with_leaf_control())
        .build()
        .run();
    assert!(
        !metrics.breaker_tripped,
        "breaker tripped under leaf control (max draw {})",
        metrics.max_total_draw
    );
    assert_eq!(metrics.rack_outcomes.len(), 7);
    for outcome in &metrics.rack_outcomes {
        assert!(
            outcome.sla_met,
            "rack {} ({:?}) missed its SLA under leaf control: {:?}",
            outcome.rack, outcome.priority, outcome.charge_duration
        );
    }
}
